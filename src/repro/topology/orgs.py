"""Organizations: the WHOIS layer above ASes.

CAIDA's sibling handling (and its ``as-org`` dataset) maps ASes to the
organizations that operate them: two ASes under one organization are
*siblings* (s2s), not customers or peers of each other.  This module
assigns organizations to a ground-truth graph — multi-AS organizations
arise both from explicit s2s links and from acquisitions among transit
networks — and renders/parses a WHOIS-style ``as-org`` text dataset, so
the sibling-inference pipeline consumes the same kind of input the real
system does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.relationships import canonical_pair
from repro.topology.model import ASGraph, ASType


@dataclass
class Organization:
    """One operating organization and the ASNs it holds."""

    org_id: str
    name: str
    asns: List[int] = field(default_factory=list)


class OrgRegistry:
    """ASN → organization mapping with sibling queries."""

    def __init__(self, orgs: Iterable[Organization] = ()):
        self._orgs: Dict[str, Organization] = {}
        self._by_asn: Dict[int, str] = {}
        for org in orgs:
            self.add(org)

    def add(self, org: Organization) -> None:
        if org.org_id in self._orgs:
            raise ValueError(f"duplicate org id {org.org_id}")
        self._orgs[org.org_id] = org
        for asn in org.asns:
            if asn in self._by_asn:
                raise ValueError(f"AS{asn} already assigned to an org")
            self._by_asn[asn] = org.org_id

    def __len__(self) -> int:
        return len(self._orgs)

    def organizations(self) -> List[Organization]:
        return sorted(self._orgs.values(), key=lambda o: o.org_id)

    def org_of(self, asn: int) -> Optional[Organization]:
        org_id = self._by_asn.get(asn)
        return self._orgs.get(org_id) if org_id else None

    def are_siblings(self, a: int, b: int) -> bool:
        """Same organization, different ASNs."""
        if a == b:
            return False
        org_a, org_b = self._by_asn.get(a), self._by_asn.get(b)
        return org_a is not None and org_a == org_b

    def sibling_pairs(self) -> Set[Tuple[int, int]]:
        """All canonical sibling pairs across the registry."""
        pairs: Set[Tuple[int, int]] = set()
        for org in self._orgs.values():
            members = sorted(org.asns)
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    pairs.add(canonical_pair(a, b))
        return pairs

    def multi_as_orgs(self) -> List[Organization]:
        return [o for o in self.organizations() if len(o.asns) > 1]


def assign_organizations(
    graph: ASGraph,
    acquisition_rate: float = 0.03,
    seed: int = 31,
) -> OrgRegistry:
    """Assign every business AS to an organization.

    Explicit s2s links in the graph always share an organization
    (connected components of the sibling relation).  Additionally, a
    fraction of transit networks have "acquired" another AS under the
    same organization — siblings with no direct link, the case WHOIS
    catches and path data cannot.
    """
    rng = random.Random(seed)
    business = [a.asn for a in graph.ases() if a.type is not ASType.IXP_RS]
    assigned: Dict[int, int] = {}  # asn -> component label
    next_label = 0

    # 1. sibling-link components
    for asn in sorted(business):
        if asn in assigned:
            continue
        stack = [asn]
        label = next_label
        next_label += 1
        while stack:
            node = stack.pop()
            if node in assigned:
                continue
            assigned[node] = label
            stack.extend(graph.siblings[node])

    members: Dict[int, List[int]] = {}
    for asn, label in assigned.items():
        members.setdefault(label, []).append(asn)

    # 2. acquisitions among transit networks: merge two components
    transit = [
        a.asn
        for a in graph.ases()
        if a.type in (ASType.LARGE_TRANSIT, ASType.SMALL_TRANSIT)
    ]
    for asn in sorted(transit):
        if rng.random() >= acquisition_rate:
            continue
        target = rng.choice(transit)
        label_a, label_b = assigned[asn], assigned[target]
        if label_a == label_b:
            continue
        # an acquisition would convert any existing business link between
        # the two groups into a sibling link; keep the model simple by
        # only merging unrelated networks
        if any(
            graph.relationship(a, b) is not None
            for a in members[label_a]
            for b in members[label_b]
        ):
            continue
        for moved in members.pop(label_b):
            assigned[moved] = label_a
            members[label_a].append(moved)

    registry = OrgRegistry()
    for index, label in enumerate(sorted(members)):
        asns = sorted(members[label])
        registry.add(
            Organization(
                org_id=f"ORG-{index + 1:05d}",
                name=f"SyntheticNet-{asns[0]}",
                asns=asns,
            )
        )
    return registry


# ---------------------------------------------------------------------------
# WHOIS-style as-org text dataset (CAIDA as-org2info flavour)
# ---------------------------------------------------------------------------


def render_as_org(registry: OrgRegistry) -> str:
    """Serialize the registry as a CAIDA ``as-org``-style text file.

    Two sections: organization records and ASN records, each
    pipe-separated with a format header comment.
    """
    lines = ["# format:org_id|name"]
    for org in registry.organizations():
        lines.append(f"{org.org_id}|{org.name}")
    lines.append("# format:aut|org_id")
    for org in registry.organizations():
        for asn in sorted(org.asns):
            lines.append(f"{asn}|{org.org_id}")
    return "\n".join(lines) + "\n"


def parse_as_org(text: str) -> OrgRegistry:
    """Parse the text form back into a registry.

    Tolerates interleaved sections and unknown comment lines, like the
    real dataset's consumers must.
    """
    names: Dict[str, str] = {}
    asns_by_org: Dict[str, List[int]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        if len(fields) < 2:
            continue
        if fields[0].isdigit():
            asns_by_org.setdefault(fields[1], []).append(int(fields[0]))
        else:
            names[fields[0]] = fields[1]
    registry = OrgRegistry()
    for org_id in sorted(set(names) | set(asns_by_org)):
        registry.add(
            Organization(
                org_id=org_id,
                name=names.get(org_id, org_id),
                asns=sorted(asns_by_org.get(org_id, [])),
            )
        )
    return registry
