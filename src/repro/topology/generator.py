"""Hierarchical synthetic Internet generator.

Builds an :class:`~repro.topology.model.ASGraph` with the structural
features the IMC 2013 algorithm's assumptions and heuristics exist to
exploit or survive:

* a fully meshed clique of transit-free tier-1 providers at the top;
* power-law customer degrees via preferential attachment;
* regional peering (dense within a region, sparse across);
* content networks that peer widely (the "flattening" Internet);
* IXP route servers that leave their ASN in the data plane and must be
  sanitized out of AS paths;
* every non-clique AS reachable through at least one provider chain.

All randomness flows through one seeded :class:`random.Random`, so a
configuration is a complete, reproducible description of a topology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.net.allocation import PrefixAllocator
from repro.net.prefix import Prefix
from repro.relationships import Relationship, canonical_pair
from repro.topology.model import AS, ASGraph, ASType, TopologyError

# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------


@dataclass
class GeneratorConfig:
    """Knobs for the synthetic Internet.

    ``peering_richness`` scales all peering probabilities; sweeping it
    upward across snapshots models the historical densification of
    peering ("flattening") the paper's longitudinal analysis observes.
    """

    n_ases: int = 1000
    seed: int = 42
    regions: int = 5
    clique_size: int = 10
    # fractions of the non-clique population per role
    frac_large_transit: float = 0.03
    frac_small_transit: float = 0.07
    frac_access: float = 0.22
    frac_content: float = 0.10
    frac_enterprise: float = 0.26
    # remainder are stubs
    # multihoming: probability of adding each extra provider beyond the first
    extra_provider_prob: float = 0.45
    max_providers: int = 4
    # peering probabilities (before richness scaling)
    # large tier-2s peer with some tier-1s while buying from others
    clique_large_transit_peer: float = 0.12
    large_transit_peer_same_region: float = 0.55
    large_transit_peer_cross_region: float = 0.12
    small_transit_peer_same_region: float = 0.10
    content_peer_access: float = 0.04
    content_peer_content: float = 0.06
    peering_richness: float = 1.0
    # IXPs: one route server per region when enabled
    ixps_enabled: bool = True
    ixp_link_fraction: float = 0.35  # fraction of eligible p2p links via IXP
    # siblings (validation realism; 0 keeps propagation strictly GR)
    sibling_pairs: int = 0
    # prefix allocation scale: multiplies per-type prefix counts
    prefix_scale: float = 1.0
    # IPv6 adoption: overall scaling of the per-role adoption rates
    # below (0 disables the v6 plane entirely)
    v6_adoption: float = 1.0
    # base for allocated ASNs
    first_asn: int = 1

    def role_counts(self) -> Dict[ASType, int]:
        """Absolute population per role implied by the fractions."""
        if self.n_ases < self.clique_size + 10:
            raise TopologyError(
                f"n_ases={self.n_ases} too small for clique_size={self.clique_size}"
            )
        rest = self.n_ases - self.clique_size
        counts = {
            ASType.CLIQUE: self.clique_size,
            ASType.LARGE_TRANSIT: max(3, int(rest * self.frac_large_transit)),
            ASType.SMALL_TRANSIT: max(5, int(rest * self.frac_small_transit)),
            ASType.ACCESS: int(rest * self.frac_access),
            ASType.CONTENT: int(rest * self.frac_content),
            ASType.ENTERPRISE: int(rest * self.frac_enterprise),
        }
        used = sum(counts.values()) - self.clique_size
        counts[ASType.STUB] = max(0, rest - used)
        return counts


# per-type IPv6 adoption probability (scaled by config.v6_adoption) and
# prefix plan: backbones deployed first, stubs last — the mid-2010s shape
_V6_ADOPTION: Dict[ASType, float] = {
    ASType.CLIQUE: 1.0,
    ASType.LARGE_TRANSIT: 0.9,
    ASType.SMALL_TRANSIT: 0.7,
    ASType.ACCESS: 0.5,
    ASType.CONTENT: 0.8,
    ASType.ENTERPRISE: 0.3,
    ASType.STUB: 0.2,
    ASType.IXP_RS: 0.0,
}
_PREFIX6_PLAN: Dict[ASType, Tuple[int, int, int]] = {
    # (min_count, max_count, length)
    ASType.CLIQUE: (2, 4, 32),
    ASType.LARGE_TRANSIT: (1, 3, 32),
    ASType.SMALL_TRANSIT: (1, 2, 36),
    ASType.ACCESS: (1, 2, 36),
    ASType.CONTENT: (1, 2, 40),
    ASType.ENTERPRISE: (1, 1, 44),
    ASType.STUB: (1, 1, 48),
    ASType.IXP_RS: (0, 0, 48),
}

# per-type prefix plan: (min_count, max_count, min_len, max_len)
_PREFIX_PLAN: Dict[ASType, Tuple[int, int, int, int]] = {
    ASType.CLIQUE: (4, 12, 14, 16),
    ASType.LARGE_TRANSIT: (2, 8, 15, 17),
    ASType.SMALL_TRANSIT: (1, 4, 17, 19),
    ASType.ACCESS: (1, 6, 16, 19),
    ASType.CONTENT: (1, 4, 18, 20),
    ASType.ENTERPRISE: (1, 2, 20, 22),
    ASType.STUB: (1, 1, 22, 24),
    ASType.IXP_RS: (0, 0, 24, 24),
}


@dataclass
class _Builder:
    """Internal mutable state while wiring the topology together."""

    config: GeneratorConfig
    rng: random.Random
    graph: ASGraph = field(default_factory=ASGraph)
    by_type: Dict[ASType, List[int]] = field(default_factory=dict)
    next_asn: int = 1


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------


def generate_topology(
    config: GeneratorConfig, allocator: PrefixAllocator = None
) -> ASGraph:
    """Build a ground-truth AS graph from ``config``.

    The returned graph carries one extra attribute, ``via_ixp``: a dict
    mapping canonical p2p link pairs to the ASN of the IXP route server
    those peers exchange routes through (the sanitization target).

    ``allocator`` lets a caller (the evolution model) share one prefix
    pool across several snapshots so allocations never collide.
    """
    rng = random.Random(config.seed)
    builder = _Builder(config=config, rng=rng, next_asn=config.first_asn)
    counts = config.role_counts()

    _create_ases(builder, counts)
    _wire_clique(builder)
    _wire_transit_tiers(builder)
    _wire_edge(builder)
    _wire_peering(builder)
    _wire_siblings(builder)
    _allocate_prefixes(builder, allocator or PrefixAllocator())
    _allocate_prefixes6(builder)
    _attach_ixps(builder)

    problems = builder.graph.validate_invariants()
    if problems:
        raise TopologyError(f"generator produced invalid graph: {problems[:5]}")
    return builder.graph


def _new_as(builder: _Builder, as_type: ASType, region: int) -> int:
    asn = builder.next_asn
    builder.next_asn += 1
    builder.graph.add_as(AS(asn=asn, type=as_type, region=region))
    builder.by_type.setdefault(as_type, []).append(asn)
    return asn


def _create_ases(builder: _Builder, counts: Dict[ASType, int]) -> None:
    rng = builder.rng
    regions = builder.config.regions
    for as_type in (
        ASType.CLIQUE,
        ASType.LARGE_TRANSIT,
        ASType.SMALL_TRANSIT,
        ASType.ACCESS,
        ASType.CONTENT,
        ASType.ENTERPRISE,
        ASType.STUB,
    ):
        for _ in range(counts.get(as_type, 0)):
            _new_as(builder, as_type, rng.randrange(regions))


def _wire_clique(builder: _Builder) -> None:
    clique = builder.by_type.get(ASType.CLIQUE, [])
    for i, a in enumerate(clique):
        for b in clique[i + 1:]:
            builder.graph.add_p2p(a, b)


# base attractiveness for preferential attachment: a tier-1 starts out
# far more likely to win customers than a regional, so realized customer
# counts correlate with role (as they do in the real Internet)
_ATTACH_BASE = {
    ASType.CLIQUE: 30,
    ASType.LARGE_TRANSIT: 12,
    ASType.SMALL_TRANSIT: 4,
    ASType.ACCESS: 1,
}


def _weighted_provider_choice(
    builder: _Builder, candidates: Sequence[int], exclude: set
) -> int:
    """Preferential attachment: weight by customers + role base weight."""
    graph = builder.graph
    pool = [c for c in candidates if c not in exclude]
    if not pool:
        raise TopologyError("no provider candidates available")
    weights = [
        len(graph.customers[c]) + _ATTACH_BASE.get(graph.get_as(c).type, 1)
        for c in pool
    ]
    return builder.rng.choices(pool, weights=weights, k=1)[0]


def _pick_providers(
    builder: _Builder, asn: int, candidates: Sequence[int], region_first: bool = True
) -> List[int]:
    """Choose 1..max_providers providers for ``asn`` with regional bias."""
    config, rng, graph = builder.config, builder.rng, builder.graph
    region = graph.get_as(asn).region
    local = [c for c in candidates if graph.get_as(c).region == region]
    chosen: List[int] = []
    exclude = {asn}
    n_providers = 1
    while (
        n_providers < config.max_providers
        and rng.random() < config.extra_provider_prob
    ):
        n_providers += 1
    # nobody buys transit from the entire candidate pool — in particular
    # a network multihomed to *every* tier-1 would be observationally
    # indistinguishable from a tier-1, which the real Internet avoids
    n_providers = min(n_providers, max(1, len(set(candidates)) - 1))
    for i in range(n_providers):
        pool = local if (region_first and local and i == 0) else candidates
        pool = [c for c in pool if c not in exclude]
        if not pool:
            pool = [c for c in candidates if c not in exclude]
        if not pool:
            break
        provider = _weighted_provider_choice(builder, pool, exclude)
        chosen.append(provider)
        exclude.add(provider)
    return chosen


def _wire_transit_tiers(builder: _Builder) -> None:
    graph = builder.graph
    clique = builder.by_type.get(ASType.CLIQUE, [])
    large = builder.by_type.get(ASType.LARGE_TRANSIT, [])
    small = builder.by_type.get(ASType.SMALL_TRANSIT, [])

    for asn in large:
        for provider in _pick_providers(builder, asn, clique):
            graph.add_p2c(provider, asn)

    # small transit buys from large transit and the clique itself —
    # tier-1 networks sell transit at every level of the hierarchy
    for asn in small:
        for provider in _pick_providers(builder, asn, large + clique):
            graph.add_p2c(provider, asn)


def _wire_edge(builder: _Builder) -> None:
    graph = builder.graph
    clique = builder.by_type.get(ASType.CLIQUE, [])
    large = builder.by_type.get(ASType.LARGE_TRANSIT, [])
    small = builder.by_type.get(ASType.SMALL_TRANSIT, [])
    access = builder.by_type.get(ASType.ACCESS, [])
    # edge networks buy from any transit tier; preferential attachment
    # concentrates customers on the largest providers
    transit_pool = small + large + clique

    for asn in access:
        for provider in _pick_providers(builder, asn, transit_pool):
            graph.add_p2c(provider, asn)

    for asn in builder.by_type.get(ASType.CONTENT, []):
        for provider in _pick_providers(builder, asn, transit_pool):
            graph.add_p2c(provider, asn)

    # enterprises may buy from access networks too (gives access networks
    # a real transit role, hence positive transit degree)
    enterprise_pool = transit_pool + access
    for asn in builder.by_type.get(ASType.ENTERPRISE, []):
        for provider in _pick_providers(builder, asn, enterprise_pool):
            graph.add_p2c(provider, asn)

    for asn in builder.by_type.get(ASType.STUB, []):
        provider = _weighted_provider_choice(builder, enterprise_pool, {asn})
        graph.add_p2c(provider, asn)


def _maybe_peer(builder: _Builder, a: int, b: int, prob: float) -> None:
    graph = builder.graph
    prob *= builder.config.peering_richness
    if a == b or prob <= 0:
        return
    if graph.relationship(a, b) is not None:
        return
    if builder.rng.random() < prob:
        graph.add_p2p(a, b)


def _wire_peering(builder: _Builder) -> None:
    config, graph = builder.config, builder.graph
    clique = builder.by_type.get(ASType.CLIQUE, [])
    large = builder.by_type.get(ASType.LARGE_TRANSIT, [])
    small = builder.by_type.get(ASType.SMALL_TRANSIT, [])
    access = builder.by_type.get(ASType.ACCESS, [])
    content = builder.by_type.get(ASType.CONTENT, [])

    def size_factor(asn: int, floor: int = 8) -> float:
        """Peering is assortative: small networks rarely peer upward."""
        return min(1.0, len(graph.customers[asn]) / floor)

    # a big tier-2 peers with the tier-1s it does not buy from
    for a in large:
        for b in clique:
            _maybe_peer(
                builder, a, b, config.clique_large_transit_peer * size_factor(a)
            )

    for i, a in enumerate(large):
        for b in large[i + 1:]:
            same = graph.get_as(a).region == graph.get_as(b).region
            prob = (
                config.large_transit_peer_same_region
                if same
                else config.large_transit_peer_cross_region
            )
            _maybe_peer(
                builder, a, b, prob * min(size_factor(a), size_factor(b), 1.0)
            )

    for i, a in enumerate(small):
        for b in small[i + 1:]:
            if graph.get_as(a).region == graph.get_as(b).region:
                _maybe_peer(builder, a, b, config.small_transit_peer_same_region)

    # the flattening story: content networks peer directly with eyeballs
    for a in content:
        for b in access:
            _maybe_peer(builder, a, b, config.content_peer_access)
        for b in content:
            if a < b:
                _maybe_peer(builder, a, b, config.content_peer_content)


def _wire_siblings(builder: _Builder) -> None:
    """Mark sibling pairs among transit ASes that are not yet linked."""
    graph, rng = builder.graph, builder.rng
    pool = builder.by_type.get(ASType.SMALL_TRANSIT, []) + builder.by_type.get(
        ASType.LARGE_TRANSIT, []
    )
    made = 0
    attempts = 0
    while made < builder.config.sibling_pairs and attempts < 200 and len(pool) >= 2:
        attempts += 1
        a, b = rng.sample(pool, 2)
        if graph.relationship(a, b) is None:
            graph.add_s2s(a, b)
            made += 1


def _allocate_prefixes(builder: _Builder, allocator: PrefixAllocator) -> None:
    rng = builder.rng
    scale = builder.config.prefix_scale
    for asys in builder.graph.ases():
        if asys.prefixes:
            continue  # already allocated (evolution re-runs over grown graphs)
        lo, hi, len_lo, len_hi = _PREFIX_PLAN[asys.type]
        count = max(lo, int(round(rng.randint(lo, max(lo, hi)) * scale))) if hi else 0
        for _ in range(count):
            asys.prefixes.append(allocator.allocate(rng.randint(len_lo, len_hi)))


def _allocate_prefixes6(builder: _Builder) -> None:
    """Give IPv6 space to the adopting subset of the population.

    Adoption must form a *connected* v6 plane for routes to flow, so a
    non-backbone network only deploys when at least one of its
    providers did — dual-stack islands without upstream v6 transit are
    skipped, as they were in reality.
    """
    from repro.net.prefix6 import Prefix6Allocator

    if builder.config.v6_adoption <= 0:
        return
    rng = builder.rng
    allocator = Prefix6Allocator()
    # walk the hierarchy top-down so provider adoption is known first
    ordered = sorted(
        builder.graph.ases(),
        key=lambda a: (len(builder.graph.providers[a.asn]) > 0, a.asn),
    )
    for asys in ordered:
        rate = _V6_ADOPTION[asys.type] * builder.config.v6_adoption
        if rate <= 0 or rng.random() >= rate:
            continue
        providers = builder.graph.providers[asys.asn]
        if providers and not any(
            builder.graph.get_as(p).v6_enabled for p in providers
        ):
            continue  # no v6 upstream: deployment would be an island
        lo, hi, length = _PREFIX6_PLAN[asys.type]
        for _ in range(rng.randint(lo, max(lo, hi))):
            asys.prefixes6.append(allocator.allocate(length))


def _attach_ixps(builder: _Builder) -> None:
    """Create IXP route-server ASes and route some peer links through them.

    The IXP RS is not a party to the business relationship; it merely
    appears as an extra ASN in observed AS paths for the links that
    cross it.  The mapping is stored on ``graph.via_ixp``.
    """
    graph = builder.graph
    via_ixp: Dict[Tuple[int, int], int] = {}
    if builder.config.ixps_enabled:
        rs_by_region: Dict[int, int] = {}
        for region in range(builder.config.regions):
            rs_by_region[region] = _new_as(builder, ASType.IXP_RS, region)
        eligible_types = {
            ASType.LARGE_TRANSIT,
            ASType.SMALL_TRANSIT,
            ASType.ACCESS,
            ASType.CONTENT,
        }
        for a, b, rel in list(graph.links()):
            if rel is not Relationship.P2P:
                continue
            ta, tb = graph.get_as(a).type, graph.get_as(b).type
            if ta not in eligible_types or tb not in eligible_types:
                continue
            # big tier-2s peer bilaterally across regions too; only
            # same-region links go through a route server for the rest
            same_region = graph.get_as(a).region == graph.get_as(b).region
            both_large = ta is ASType.LARGE_TRANSIT and tb is ASType.LARGE_TRANSIT
            if not same_region and not both_large:
                continue
            if builder.rng.random() < builder.config.ixp_link_fraction:
                via_ixp[canonical_pair(a, b)] = rs_by_region[graph.get_as(a).region]
    graph.via_ixp = via_ixp  # type: ignore[attr-defined]


# ---------------------------------------------------------------------------
# internet scale
# ---------------------------------------------------------------------------
#
# generate_topology above is O(n·m) in two places — the per-link cycle
# BFS inside add_p2c and the all-pairs peering scans — which is fine at
# thousands of ASes and hopeless at 100k.  The internet-scale path
# below produces the same *kind* of world (planted clique, power-law
# customer degrees by preferential attachment, regional peering,
# widely-peering content networks, IXP route servers) with strictly
# linear wiring: an urn sampler makes each weighted provider pick O(1),
# tier-ordered wiring makes cycle checks unnecessary per link (the
# global validator still runs once), and peering draws a target degree
# per AS instead of flipping a coin per pair.


@dataclass
class InternetScaleConfig:
    """Knobs for 100k-AS worlds; shape mirrors :class:`GeneratorConfig`.

    Role fractions default to roughly the 2013 Internet mix (~400
    large transits, ~3k regional transits, ~22k access networks, and a
    long tail of enterprises and stubs under a 15-member clique).  The
    ``*_peer_degree`` knobs are *mean peer links per AS of that role*
    rather than per-pair probabilities — that is what keeps peering
    linear — and ``peering_richness`` scales them all, same as in the
    small generator.
    """

    n_ases: int = 100_000
    seed: int = 42
    regions: int = 8
    clique_size: int = 15
    # fractions of the non-clique population per role (rest are stubs)
    frac_large_transit: float = 0.004
    frac_small_transit: float = 0.03
    frac_access: float = 0.22
    frac_content: float = 0.06
    frac_enterprise: float = 0.25
    # multihoming mix: geometric extra-provider draws, as in the small
    # generator but with a higher cap (big eyeballs multihome widely)
    extra_provider_prob: float = 0.45
    max_providers: int = 6
    # peering density: mean peer links drawn per AS of each role
    large_peer_degree: float = 30.0  # among tier-2s and tier-1s
    small_peer_degree: float = 8.0  # same-region regional transits
    content_peer_degree: float = 25.0  # the flattening: content ↔ edge
    access_peer_degree: float = 2.0  # same-region eyeball peering
    peering_richness: float = 1.0
    # IXPs: one route server per region when enabled
    ixps_enabled: bool = True
    ixp_link_fraction: float = 0.25
    sibling_pairs: int = 0
    # IPv6 plane off by default at this scale (each adopter doubles
    # its routing-table footprint); turn up for congruence runs
    v6_adoption: float = 0.0
    first_asn: int = 1

    def role_counts(self) -> Dict[ASType, int]:
        """Absolute population per role implied by the fractions."""
        if self.n_ases < self.clique_size + 10:
            raise TopologyError(
                f"n_ases={self.n_ases} too small for "
                f"clique_size={self.clique_size}"
            )
        rest = self.n_ases - self.clique_size
        counts = {
            ASType.CLIQUE: self.clique_size,
            ASType.LARGE_TRANSIT: max(3, int(rest * self.frac_large_transit)),
            ASType.SMALL_TRANSIT: max(5, int(rest * self.frac_small_transit)),
            ASType.ACCESS: int(rest * self.frac_access),
            ASType.CONTENT: int(rest * self.frac_content),
            ASType.ENTERPRISE: int(rest * self.frac_enterprise),
        }
        used = sum(counts.values()) - self.clique_size
        counts[ASType.STUB] = max(0, rest - used)
        return counts


# internet-scale prefix plan: (min_count, max_count, min_len, max_len).
# Leaner than _PREFIX_PLAN on purpose — the small plan hands access
# networks up to six /16-equivalents each, which at 100k ASes would
# exhaust the 220-/8 IPv4 pool several times over.  One announcement
# per edge AS keeps the whole world inside a fraction of the pool while
# preserving the size ordering (transit > access > enterprise > stub).
_INTERNET_PREFIX_PLAN: Dict[ASType, Tuple[int, int, int, int]] = {
    ASType.CLIQUE: (2, 4, 14, 16),
    ASType.LARGE_TRANSIT: (1, 2, 16, 18),
    ASType.SMALL_TRANSIT: (1, 1, 18, 20),
    ASType.ACCESS: (1, 1, 17, 20),
    ASType.CONTENT: (1, 1, 20, 22),
    ASType.ENTERPRISE: (1, 1, 22, 24),
    ASType.STUB: (1, 1, 24, 24),
    ASType.IXP_RS: (0, 0, 24, 24),
}


def _create_internet_ases(builder: _Builder, counts: Dict[ASType, int]) -> None:
    """Bulk AS creation: same tier order as :func:`_create_ases`, with
    the region draw and per-node bookkeeping flattened for volume."""
    rand = builder.rng.random
    regions = builder.config.regions
    graph = builder.graph
    for as_type in (
        ASType.CLIQUE,
        ASType.LARGE_TRANSIT,
        ASType.SMALL_TRANSIT,
        ASType.ACCESS,
        ASType.CONTENT,
        ASType.ENTERPRISE,
        ASType.STUB,
    ):
        members = builder.by_type.setdefault(as_type, [])
        for _ in range(counts.get(as_type, 0)):
            asn = builder.next_asn
            builder.next_asn += 1
            graph.add_as(AS(asn=asn, type=as_type, region=int(rand() * regions)))
            members.append(asn)


class _BallSampler:
    """O(1) weighted sampling urn for preferential attachment.

    Each candidate appears ``weight`` times in the urn; every win
    appends one more ball (:meth:`boost`), so pick probability tracks
    realized customer count exactly as the rich-get-richer process
    demands — without ever recomputing a weight vector.  A per-region
    urn serves the region-first pick of a customer's primary provider.
    """

    __slots__ = ("rng", "balls", "by_region", "region_of", "members")

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.balls: List[int] = []
        self.by_region: Dict[int, List[int]] = {}
        self.region_of: Dict[int, int] = {}
        self.members: List[int] = []

    def add(self, asn: int, region: int, weight: int) -> None:
        self.region_of[asn] = region
        self.members.append(asn)
        self.balls.extend([asn] * weight)
        self.by_region.setdefault(region, []).extend([asn] * weight)

    def boost(self, asn: int) -> None:
        self.balls.append(asn)
        self.by_region[self.region_of[asn]].append(asn)

    def pick(self, exclude: set, region: int = None) -> int:
        """One weighted draw avoiding ``exclude``.

        Rejection-samples the regional urn (when asked) and then the
        global one; the bounded retries fail only when nearly the whole
        pool is excluded, in which case a deterministic scan settles
        it.  Raises :class:`TopologyError` with the same message as the
        quadratic picker when no candidate exists at all.
        """
        rand = self.rng.random  # C-level; randrange costs 3x as much
        urn = self.by_region.get(region) if region is not None else None
        if not urn:
            urn = self.balls
        n = len(urn)
        for _ in range(64):
            asn = urn[int(rand() * n)]
            if asn not in exclude:
                return asn
        if urn is not self.balls:
            urn = self.balls
            n = len(urn)
            for _ in range(64):
                asn = urn[int(rand() * n)]
                if asn not in exclude:
                    return asn
        for asn in self.members:
            if asn not in exclude:
                return asn
        raise TopologyError("no provider candidates available")


def _attachment_sampler(builder: _Builder, pool: Sequence[int]) -> _BallSampler:
    """An urn over ``pool``, seeded with role base + current customers."""
    graph = builder.graph
    sampler = _BallSampler(builder.rng)
    for c in pool:
        asys = graph.get_as(c)
        weight = len(graph.customers[c]) + _ATTACH_BASE.get(asys.type, 1)
        sampler.add(c, asys.region, weight)
    return sampler


def _pick_providers_fast(
    builder: _Builder, sampler: _BallSampler, asn: int, pool_size: int
) -> List[int]:
    """Urn-backed equivalent of :func:`_pick_providers`: geometric
    provider count, region-biased first pick, never the whole pool."""
    config, rng = builder.config, builder.rng
    region = builder.graph.get_as(asn).region
    n_providers = 1
    while (
        n_providers < config.max_providers
        and rng.random() < config.extra_provider_prob
    ):
        n_providers += 1
    n_providers = min(n_providers, max(1, pool_size - 1))
    chosen: List[int] = []
    exclude = {asn}
    for i in range(n_providers):
        provider = sampler.pick(exclude, region=region if i == 0 else None)
        chosen.append(provider)
        exclude.add(provider)
        sampler.boost(provider)
    return chosen


def _wire_internet_transit(builder: _Builder) -> None:
    """Tier-ordered transit wiring: DAG by construction, so links go in
    through :meth:`~repro.topology.model.ASGraph.add_p2c_unchecked`
    and the only cycle check left is the global one at the end."""
    graph = builder.graph
    by_type = builder.by_type
    clique = by_type.get(ASType.CLIQUE, [])
    large = by_type.get(ASType.LARGE_TRANSIT, [])
    small = by_type.get(ASType.SMALL_TRANSIT, [])
    access = by_type.get(ASType.ACCESS, [])

    sampler = _attachment_sampler(builder, clique)
    for asn in large:
        for provider in _pick_providers_fast(builder, sampler, asn, len(clique)):
            graph.add_p2c_unchecked(provider, asn)

    pool = large + clique
    sampler = _attachment_sampler(builder, pool)
    for asn in small:
        for provider in _pick_providers_fast(builder, sampler, asn, len(pool)):
            graph.add_p2c_unchecked(provider, asn)

    transit_pool = small + large + clique
    sampler = _attachment_sampler(builder, transit_pool)
    for asn in access:
        for provider in _pick_providers_fast(
            builder, sampler, asn, len(transit_pool)
        ):
            graph.add_p2c_unchecked(provider, asn)
    for asn in by_type.get(ASType.CONTENT, []):
        for provider in _pick_providers_fast(
            builder, sampler, asn, len(transit_pool)
        ):
            graph.add_p2c_unchecked(provider, asn)

    # enterprises may buy from access networks; stubs draw a single
    # provider from the same pool (same shape as the small generator)
    enterprise_pool = transit_pool + access
    sampler = _attachment_sampler(builder, enterprise_pool)
    for asn in by_type.get(ASType.ENTERPRISE, []):
        for provider in _pick_providers_fast(
            builder, sampler, asn, len(enterprise_pool)
        ):
            graph.add_p2c_unchecked(provider, asn)
    for asn in by_type.get(ASType.STUB, []):
        region = graph.get_as(asn).region
        provider = sampler.pick({asn}, region=region)
        sampler.boost(provider)
        graph.add_p2c_unchecked(provider, asn)


def _target_degree(rng: random.Random, mean: float) -> int:
    """Integer draw with expectation ``mean`` (floor + Bernoulli rest)."""
    if mean <= 0:
        return 0
    k = int(mean)
    if rng.random() < mean - k:
        k += 1
    return k


def _peer_up_to(
    builder: _Builder, asn: int, pool: Sequence[int], k: int
) -> None:
    """Draw peers for ``asn`` from ``pool`` until ``k`` links are made.

    Bounded retries absorb collisions with self, existing links and
    duplicates; a dense pool hits the target almost always, a tiny one
    degrades gracefully instead of looping.
    """
    if k <= 0 or not pool:
        return
    link = builder.graph.add_p2p_if_absent
    rand = builder.rng.random
    n = len(pool)
    made = 0
    for _ in range(4 * k + 8):
        if made >= k:
            break
        b = pool[int(rand() * n)]
        if b != asn and link(asn, b):
            made += 1


def _wire_internet_peering(builder: _Builder) -> None:
    """Degree-targeted peering: O(links drawn), not O(pairs scanned)."""
    config, graph, rng = builder.config, builder.graph, builder.rng
    by_type = builder.by_type
    clique = by_type.get(ASType.CLIQUE, [])
    large = by_type.get(ASType.LARGE_TRANSIT, [])
    small = by_type.get(ASType.SMALL_TRANSIT, [])
    access = by_type.get(ASType.ACCESS, [])
    content = by_type.get(ASType.CONTENT, [])
    richness = config.peering_richness

    by_region: Dict[Tuple[ASType, int], List[int]] = {}
    for as_type, members in ((ASType.SMALL_TRANSIT, small),
                             (ASType.ACCESS, access)):
        for asn in members:
            by_region.setdefault(
                (as_type, graph.get_as(asn).region), []
            ).append(asn)

    # tier-2s interconnect among themselves and with tier-1s they do
    # not buy from; regional transits and eyeballs peer within region;
    # content networks peer widely with the edge (the flattening)
    large_pool = large + clique
    for asn in large:
        k = _target_degree(rng, config.large_peer_degree * richness)
        _peer_up_to(builder, asn, large_pool, k)
    for asn in small:
        pool = by_region.get((ASType.SMALL_TRANSIT, graph.get_as(asn).region), [])
        k = _target_degree(rng, config.small_peer_degree * richness)
        _peer_up_to(builder, asn, pool, k)
    edge_pool = access + content
    for asn in content:
        k = _target_degree(rng, config.content_peer_degree * richness)
        _peer_up_to(builder, asn, edge_pool, k)
    for asn in access:
        pool = by_region.get((ASType.ACCESS, graph.get_as(asn).region), [])
        k = _target_degree(rng, config.access_peer_degree * richness)
        _peer_up_to(builder, asn, pool, k)


class _SequentialPrefixPool:
    """Aligned sequential carve of the unicast IPv4 space: O(1) a prefix.

    The buddy :class:`~repro.net.allocation.PrefixAllocator` spends two
    object constructions per split plus free-list bookkeeping on every
    request — a couple of microseconds that, times a few hundred
    thousand prefixes, dominates allocation at internet scale.  A
    monotone cursor that rounds up to the requested alignment gives the
    same guarantees the generator needs (canonical, non-overlapping,
    deterministic in the request sequence) for one ``Prefix``
    construction each.
    """

    __slots__ = ("cursor", "end")

    _SKIP_OCTETS = (10, 127)  # conventional private/loopback /8s

    def __init__(self) -> None:
        self.cursor = 1 << 24  # 1.0.0.0
        self.end = 224 << 24  # top of unicast space

    def allocate(self, length: int) -> Prefix:
        size = 1 << (32 - length)
        network = (self.cursor + size - 1) & -size
        while (network >> 24) in self._SKIP_OCTETS:
            network = ((network >> 24) + 1) << 24
            network = (network + size - 1) & -size
        if network + size > self.end:
            raise TopologyError("internet prefix pool exhausted")
        self.cursor = network + size
        return Prefix(network, length)


def _allocate_internet_prefixes(builder: _Builder, allocator) -> None:
    # rand()-based draws instead of randint: same distribution, a third
    # of the cost, and most roles announce exactly one prefix anyway
    rand = builder.rng.random
    allocate = allocator.allocate
    for asys in builder.graph.ases():
        if asys.prefixes:
            continue
        lo, hi, len_lo, len_hi = _INTERNET_PREFIX_PLAN[asys.type]
        if not hi:
            continue
        count = lo if hi <= lo else lo + int(rand() * (hi - lo + 1))
        span = len_hi - len_lo + 1
        for _ in range(count):
            length = len_lo if span == 1 else len_lo + int(rand() * span)
            asys.prefixes.append(allocate(length))


def _attach_internet_ixps(builder: _Builder) -> None:
    """Same policy as :func:`_attach_ixps`, restated for bulk graphs.

    Walking ``graph.links()`` with two ``get_as`` calls per link costs
    more than all of peering at 100k ASes; this pass iterates the link
    table directly with the role/region lookups flattened into one
    dict built up front.  The coin flips land on the eligible links in
    insertion order, so the policy (and its parameters) match the
    small generator exactly.
    """
    graph = builder.graph
    via_ixp: Dict[Tuple[int, int], int] = {}
    if builder.config.ixps_enabled:
        rs_by_region: Dict[int, int] = {}
        for region in range(builder.config.regions):
            rs_by_region[region] = _new_as(builder, ASType.IXP_RS, region)
        eligible_types = {
            ASType.LARGE_TRANSIT,
            ASType.SMALL_TRANSIT,
            ASType.ACCESS,
            ASType.CONTENT,
        }
        traits = {
            a.asn: (a.type in eligible_types, a.type is ASType.LARGE_TRANSIT,
                    a.region)
            for a in graph.ases()
        }
        rand = builder.rng.random
        fraction = builder.config.ixp_link_fraction
        for key, rel in graph._links.items():  # noqa: SLF001 - hot path
            if rel is not Relationship.P2P:
                continue
            a, b = key
            ok_a, large_a, region_a = traits[a]
            ok_b, large_b, region_b = traits[b]
            if not (ok_a and ok_b):
                continue
            if region_a != region_b and not (large_a and large_b):
                continue
            if rand() < fraction:
                via_ixp[key] = rs_by_region[region_a]
    graph.via_ixp = via_ixp  # type: ignore[attr-defined]


def generate_internet_topology(
    config: InternetScaleConfig, allocator=None
) -> ASGraph:
    """Build an internet-scale ground-truth graph from ``config``.

    Same contract as :func:`generate_topology` — the graph carries
    ``via_ixp``, all randomness flows through one seeded
    ``random.Random`` (pure stdlib: output is identical with or
    without numpy installed), and the global invariant check still
    runs — but every wiring stage is linear in ASes + links, so 100k
    ASes build in seconds rather than hours.

    ``allocator`` defaults to the O(1) sequential carve; pass a
    :class:`~repro.net.allocation.PrefixAllocator` to share one pool
    across snapshots (allocations then follow that pool's layout).
    """
    rng = random.Random(config.seed)
    builder = _Builder(config=config, rng=rng, next_asn=config.first_asn)
    counts = config.role_counts()

    _create_internet_ases(builder, counts)
    _wire_clique(builder)
    _wire_internet_transit(builder)
    _wire_internet_peering(builder)
    _wire_siblings(builder)
    _allocate_internet_prefixes(builder, allocator or _SequentialPrefixPool())
    _allocate_prefixes6(builder)
    _attach_internet_ixps(builder)

    problems = builder.graph.validate_invariants()
    if problems:
        raise TopologyError(f"generator produced invalid graph: {problems[:5]}")
    return builder.graph
