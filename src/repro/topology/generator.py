"""Hierarchical synthetic Internet generator.

Builds an :class:`~repro.topology.model.ASGraph` with the structural
features the IMC 2013 algorithm's assumptions and heuristics exist to
exploit or survive:

* a fully meshed clique of transit-free tier-1 providers at the top;
* power-law customer degrees via preferential attachment;
* regional peering (dense within a region, sparse across);
* content networks that peer widely (the "flattening" Internet);
* IXP route servers that leave their ASN in the data plane and must be
  sanitized out of AS paths;
* every non-clique AS reachable through at least one provider chain.

All randomness flows through one seeded :class:`random.Random`, so a
configuration is a complete, reproducible description of a topology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.net.allocation import PrefixAllocator
from repro.relationships import Relationship, canonical_pair
from repro.topology.model import AS, ASGraph, ASType, TopologyError

# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------


@dataclass
class GeneratorConfig:
    """Knobs for the synthetic Internet.

    ``peering_richness`` scales all peering probabilities; sweeping it
    upward across snapshots models the historical densification of
    peering ("flattening") the paper's longitudinal analysis observes.
    """

    n_ases: int = 1000
    seed: int = 42
    regions: int = 5
    clique_size: int = 10
    # fractions of the non-clique population per role
    frac_large_transit: float = 0.03
    frac_small_transit: float = 0.07
    frac_access: float = 0.22
    frac_content: float = 0.10
    frac_enterprise: float = 0.26
    # remainder are stubs
    # multihoming: probability of adding each extra provider beyond the first
    extra_provider_prob: float = 0.45
    max_providers: int = 4
    # peering probabilities (before richness scaling)
    # large tier-2s peer with some tier-1s while buying from others
    clique_large_transit_peer: float = 0.12
    large_transit_peer_same_region: float = 0.55
    large_transit_peer_cross_region: float = 0.12
    small_transit_peer_same_region: float = 0.10
    content_peer_access: float = 0.04
    content_peer_content: float = 0.06
    peering_richness: float = 1.0
    # IXPs: one route server per region when enabled
    ixps_enabled: bool = True
    ixp_link_fraction: float = 0.35  # fraction of eligible p2p links via IXP
    # siblings (validation realism; 0 keeps propagation strictly GR)
    sibling_pairs: int = 0
    # prefix allocation scale: multiplies per-type prefix counts
    prefix_scale: float = 1.0
    # IPv6 adoption: overall scaling of the per-role adoption rates
    # below (0 disables the v6 plane entirely)
    v6_adoption: float = 1.0
    # base for allocated ASNs
    first_asn: int = 1

    def role_counts(self) -> Dict[ASType, int]:
        """Absolute population per role implied by the fractions."""
        if self.n_ases < self.clique_size + 10:
            raise TopologyError(
                f"n_ases={self.n_ases} too small for clique_size={self.clique_size}"
            )
        rest = self.n_ases - self.clique_size
        counts = {
            ASType.CLIQUE: self.clique_size,
            ASType.LARGE_TRANSIT: max(3, int(rest * self.frac_large_transit)),
            ASType.SMALL_TRANSIT: max(5, int(rest * self.frac_small_transit)),
            ASType.ACCESS: int(rest * self.frac_access),
            ASType.CONTENT: int(rest * self.frac_content),
            ASType.ENTERPRISE: int(rest * self.frac_enterprise),
        }
        used = sum(counts.values()) - self.clique_size
        counts[ASType.STUB] = max(0, rest - used)
        return counts


# per-type IPv6 adoption probability (scaled by config.v6_adoption) and
# prefix plan: backbones deployed first, stubs last — the mid-2010s shape
_V6_ADOPTION: Dict[ASType, float] = {
    ASType.CLIQUE: 1.0,
    ASType.LARGE_TRANSIT: 0.9,
    ASType.SMALL_TRANSIT: 0.7,
    ASType.ACCESS: 0.5,
    ASType.CONTENT: 0.8,
    ASType.ENTERPRISE: 0.3,
    ASType.STUB: 0.2,
    ASType.IXP_RS: 0.0,
}
_PREFIX6_PLAN: Dict[ASType, Tuple[int, int, int]] = {
    # (min_count, max_count, length)
    ASType.CLIQUE: (2, 4, 32),
    ASType.LARGE_TRANSIT: (1, 3, 32),
    ASType.SMALL_TRANSIT: (1, 2, 36),
    ASType.ACCESS: (1, 2, 36),
    ASType.CONTENT: (1, 2, 40),
    ASType.ENTERPRISE: (1, 1, 44),
    ASType.STUB: (1, 1, 48),
    ASType.IXP_RS: (0, 0, 48),
}

# per-type prefix plan: (min_count, max_count, min_len, max_len)
_PREFIX_PLAN: Dict[ASType, Tuple[int, int, int, int]] = {
    ASType.CLIQUE: (4, 12, 14, 16),
    ASType.LARGE_TRANSIT: (2, 8, 15, 17),
    ASType.SMALL_TRANSIT: (1, 4, 17, 19),
    ASType.ACCESS: (1, 6, 16, 19),
    ASType.CONTENT: (1, 4, 18, 20),
    ASType.ENTERPRISE: (1, 2, 20, 22),
    ASType.STUB: (1, 1, 22, 24),
    ASType.IXP_RS: (0, 0, 24, 24),
}


@dataclass
class _Builder:
    """Internal mutable state while wiring the topology together."""

    config: GeneratorConfig
    rng: random.Random
    graph: ASGraph = field(default_factory=ASGraph)
    by_type: Dict[ASType, List[int]] = field(default_factory=dict)
    next_asn: int = 1


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------


def generate_topology(
    config: GeneratorConfig, allocator: PrefixAllocator = None
) -> ASGraph:
    """Build a ground-truth AS graph from ``config``.

    The returned graph carries one extra attribute, ``via_ixp``: a dict
    mapping canonical p2p link pairs to the ASN of the IXP route server
    those peers exchange routes through (the sanitization target).

    ``allocator`` lets a caller (the evolution model) share one prefix
    pool across several snapshots so allocations never collide.
    """
    rng = random.Random(config.seed)
    builder = _Builder(config=config, rng=rng, next_asn=config.first_asn)
    counts = config.role_counts()

    _create_ases(builder, counts)
    _wire_clique(builder)
    _wire_transit_tiers(builder)
    _wire_edge(builder)
    _wire_peering(builder)
    _wire_siblings(builder)
    _allocate_prefixes(builder, allocator or PrefixAllocator())
    _allocate_prefixes6(builder)
    _attach_ixps(builder)

    problems = builder.graph.validate_invariants()
    if problems:
        raise TopologyError(f"generator produced invalid graph: {problems[:5]}")
    return builder.graph


def _new_as(builder: _Builder, as_type: ASType, region: int) -> int:
    asn = builder.next_asn
    builder.next_asn += 1
    builder.graph.add_as(AS(asn=asn, type=as_type, region=region))
    builder.by_type.setdefault(as_type, []).append(asn)
    return asn


def _create_ases(builder: _Builder, counts: Dict[ASType, int]) -> None:
    rng = builder.rng
    regions = builder.config.regions
    for as_type in (
        ASType.CLIQUE,
        ASType.LARGE_TRANSIT,
        ASType.SMALL_TRANSIT,
        ASType.ACCESS,
        ASType.CONTENT,
        ASType.ENTERPRISE,
        ASType.STUB,
    ):
        for _ in range(counts.get(as_type, 0)):
            _new_as(builder, as_type, rng.randrange(regions))


def _wire_clique(builder: _Builder) -> None:
    clique = builder.by_type.get(ASType.CLIQUE, [])
    for i, a in enumerate(clique):
        for b in clique[i + 1:]:
            builder.graph.add_p2p(a, b)


# base attractiveness for preferential attachment: a tier-1 starts out
# far more likely to win customers than a regional, so realized customer
# counts correlate with role (as they do in the real Internet)
_ATTACH_BASE = {
    ASType.CLIQUE: 30,
    ASType.LARGE_TRANSIT: 12,
    ASType.SMALL_TRANSIT: 4,
    ASType.ACCESS: 1,
}


def _weighted_provider_choice(
    builder: _Builder, candidates: Sequence[int], exclude: set
) -> int:
    """Preferential attachment: weight by customers + role base weight."""
    graph = builder.graph
    pool = [c for c in candidates if c not in exclude]
    if not pool:
        raise TopologyError("no provider candidates available")
    weights = [
        len(graph.customers[c]) + _ATTACH_BASE.get(graph.get_as(c).type, 1)
        for c in pool
    ]
    return builder.rng.choices(pool, weights=weights, k=1)[0]


def _pick_providers(
    builder: _Builder, asn: int, candidates: Sequence[int], region_first: bool = True
) -> List[int]:
    """Choose 1..max_providers providers for ``asn`` with regional bias."""
    config, rng, graph = builder.config, builder.rng, builder.graph
    region = graph.get_as(asn).region
    local = [c for c in candidates if graph.get_as(c).region == region]
    chosen: List[int] = []
    exclude = {asn}
    n_providers = 1
    while (
        n_providers < config.max_providers
        and rng.random() < config.extra_provider_prob
    ):
        n_providers += 1
    # nobody buys transit from the entire candidate pool — in particular
    # a network multihomed to *every* tier-1 would be observationally
    # indistinguishable from a tier-1, which the real Internet avoids
    n_providers = min(n_providers, max(1, len(set(candidates)) - 1))
    for i in range(n_providers):
        pool = local if (region_first and local and i == 0) else candidates
        pool = [c for c in pool if c not in exclude]
        if not pool:
            pool = [c for c in candidates if c not in exclude]
        if not pool:
            break
        provider = _weighted_provider_choice(builder, pool, exclude)
        chosen.append(provider)
        exclude.add(provider)
    return chosen


def _wire_transit_tiers(builder: _Builder) -> None:
    graph = builder.graph
    clique = builder.by_type.get(ASType.CLIQUE, [])
    large = builder.by_type.get(ASType.LARGE_TRANSIT, [])
    small = builder.by_type.get(ASType.SMALL_TRANSIT, [])

    for asn in large:
        for provider in _pick_providers(builder, asn, clique):
            graph.add_p2c(provider, asn)

    # small transit buys from large transit and the clique itself —
    # tier-1 networks sell transit at every level of the hierarchy
    for asn in small:
        for provider in _pick_providers(builder, asn, large + clique):
            graph.add_p2c(provider, asn)


def _wire_edge(builder: _Builder) -> None:
    graph = builder.graph
    clique = builder.by_type.get(ASType.CLIQUE, [])
    large = builder.by_type.get(ASType.LARGE_TRANSIT, [])
    small = builder.by_type.get(ASType.SMALL_TRANSIT, [])
    access = builder.by_type.get(ASType.ACCESS, [])
    # edge networks buy from any transit tier; preferential attachment
    # concentrates customers on the largest providers
    transit_pool = small + large + clique

    for asn in access:
        for provider in _pick_providers(builder, asn, transit_pool):
            graph.add_p2c(provider, asn)

    for asn in builder.by_type.get(ASType.CONTENT, []):
        for provider in _pick_providers(builder, asn, transit_pool):
            graph.add_p2c(provider, asn)

    # enterprises may buy from access networks too (gives access networks
    # a real transit role, hence positive transit degree)
    enterprise_pool = transit_pool + access
    for asn in builder.by_type.get(ASType.ENTERPRISE, []):
        for provider in _pick_providers(builder, asn, enterprise_pool):
            graph.add_p2c(provider, asn)

    for asn in builder.by_type.get(ASType.STUB, []):
        provider = _weighted_provider_choice(builder, enterprise_pool, {asn})
        graph.add_p2c(provider, asn)


def _maybe_peer(builder: _Builder, a: int, b: int, prob: float) -> None:
    graph = builder.graph
    prob *= builder.config.peering_richness
    if a == b or prob <= 0:
        return
    if graph.relationship(a, b) is not None:
        return
    if builder.rng.random() < prob:
        graph.add_p2p(a, b)


def _wire_peering(builder: _Builder) -> None:
    config, graph = builder.config, builder.graph
    clique = builder.by_type.get(ASType.CLIQUE, [])
    large = builder.by_type.get(ASType.LARGE_TRANSIT, [])
    small = builder.by_type.get(ASType.SMALL_TRANSIT, [])
    access = builder.by_type.get(ASType.ACCESS, [])
    content = builder.by_type.get(ASType.CONTENT, [])

    def size_factor(asn: int, floor: int = 8) -> float:
        """Peering is assortative: small networks rarely peer upward."""
        return min(1.0, len(graph.customers[asn]) / floor)

    # a big tier-2 peers with the tier-1s it does not buy from
    for a in large:
        for b in clique:
            _maybe_peer(
                builder, a, b, config.clique_large_transit_peer * size_factor(a)
            )

    for i, a in enumerate(large):
        for b in large[i + 1:]:
            same = graph.get_as(a).region == graph.get_as(b).region
            prob = (
                config.large_transit_peer_same_region
                if same
                else config.large_transit_peer_cross_region
            )
            _maybe_peer(
                builder, a, b, prob * min(size_factor(a), size_factor(b), 1.0)
            )

    for i, a in enumerate(small):
        for b in small[i + 1:]:
            if graph.get_as(a).region == graph.get_as(b).region:
                _maybe_peer(builder, a, b, config.small_transit_peer_same_region)

    # the flattening story: content networks peer directly with eyeballs
    for a in content:
        for b in access:
            _maybe_peer(builder, a, b, config.content_peer_access)
        for b in content:
            if a < b:
                _maybe_peer(builder, a, b, config.content_peer_content)


def _wire_siblings(builder: _Builder) -> None:
    """Mark sibling pairs among transit ASes that are not yet linked."""
    graph, rng = builder.graph, builder.rng
    pool = builder.by_type.get(ASType.SMALL_TRANSIT, []) + builder.by_type.get(
        ASType.LARGE_TRANSIT, []
    )
    made = 0
    attempts = 0
    while made < builder.config.sibling_pairs and attempts < 200 and len(pool) >= 2:
        attempts += 1
        a, b = rng.sample(pool, 2)
        if graph.relationship(a, b) is None:
            graph.add_s2s(a, b)
            made += 1


def _allocate_prefixes(builder: _Builder, allocator: PrefixAllocator) -> None:
    rng = builder.rng
    scale = builder.config.prefix_scale
    for asys in builder.graph.ases():
        if asys.prefixes:
            continue  # already allocated (evolution re-runs over grown graphs)
        lo, hi, len_lo, len_hi = _PREFIX_PLAN[asys.type]
        count = max(lo, int(round(rng.randint(lo, max(lo, hi)) * scale))) if hi else 0
        for _ in range(count):
            asys.prefixes.append(allocator.allocate(rng.randint(len_lo, len_hi)))


def _allocate_prefixes6(builder: _Builder) -> None:
    """Give IPv6 space to the adopting subset of the population.

    Adoption must form a *connected* v6 plane for routes to flow, so a
    non-backbone network only deploys when at least one of its
    providers did — dual-stack islands without upstream v6 transit are
    skipped, as they were in reality.
    """
    from repro.net.prefix6 import Prefix6Allocator

    if builder.config.v6_adoption <= 0:
        return
    rng = builder.rng
    allocator = Prefix6Allocator()
    # walk the hierarchy top-down so provider adoption is known first
    ordered = sorted(
        builder.graph.ases(),
        key=lambda a: (len(builder.graph.providers[a.asn]) > 0, a.asn),
    )
    for asys in ordered:
        rate = _V6_ADOPTION[asys.type] * builder.config.v6_adoption
        if rate <= 0 or rng.random() >= rate:
            continue
        providers = builder.graph.providers[asys.asn]
        if providers and not any(
            builder.graph.get_as(p).v6_enabled for p in providers
        ):
            continue  # no v6 upstream: deployment would be an island
        lo, hi, length = _PREFIX6_PLAN[asys.type]
        for _ in range(rng.randint(lo, max(lo, hi))):
            asys.prefixes6.append(allocator.allocate(length))


def _attach_ixps(builder: _Builder) -> None:
    """Create IXP route-server ASes and route some peer links through them.

    The IXP RS is not a party to the business relationship; it merely
    appears as an extra ASN in observed AS paths for the links that
    cross it.  The mapping is stored on ``graph.via_ixp``.
    """
    graph = builder.graph
    via_ixp: Dict[Tuple[int, int], int] = {}
    if builder.config.ixps_enabled:
        rs_by_region: Dict[int, int] = {}
        for region in range(builder.config.regions):
            rs_by_region[region] = _new_as(builder, ASType.IXP_RS, region)
        eligible_types = {
            ASType.LARGE_TRANSIT,
            ASType.SMALL_TRANSIT,
            ASType.ACCESS,
            ASType.CONTENT,
        }
        for a, b, rel in list(graph.links()):
            if rel is not Relationship.P2P:
                continue
            ta, tb = graph.get_as(a).type, graph.get_as(b).type
            if ta not in eligible_types or tb not in eligible_types:
                continue
            # big tier-2s peer bilaterally across regions too; only
            # same-region links go through a route server for the rest
            same_region = graph.get_as(a).region == graph.get_as(b).region
            both_large = ta is ASType.LARGE_TRANSIT and tb is ASType.LARGE_TRANSIT
            if not same_region and not both_large:
                continue
            if builder.rng.random() < builder.config.ixp_link_fraction:
                via_ixp[canonical_pair(a, b)] = rs_by_region[graph.get_as(a).region]
    graph.via_ixp = via_ixp  # type: ignore[attr-defined]
