"""Longitudinal topology series: a growing, flattening Internet.

The paper's evaluation spans 1998–2013 snapshots.  This module grows a
single topology through a sequence of *eras*: each era adds new edge
ASes (preferential attachment keeps the degree distribution heavy
tailed), densifies peering — especially content↔access peering, the
"flattening" signal — and occasionally promotes a large transit AS into
the tier-1 clique (clique churn).  Because growth is incremental, ASNs
are stable across snapshots and per-AS time series (cone sizes, clique
membership) are meaningful.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.net.allocation import PrefixAllocator
from repro.relationships import Relationship
from repro.topology.generator import (
    GeneratorConfig,
    _PREFIX_PLAN,
    generate_topology,
)
from repro.topology.model import AS, ASGraph, ASType, TopologyError


@dataclass
class Era:
    """One growth step: a labeled snapshot target."""

    label: str
    new_ases: int
    peering_boost: float = 0.0  # extra content/access peer probability
    clique_entrants: int = 0  # large-transit ASes promoted into the clique
    # probability that an arriving network shops regionally (buys from a
    # non-clique provider).  Ramping this up across eras is what makes
    # the tier-1 cone *share* decline — the paper's flattening signal.
    regional_bias: float = 0.0


@dataclass
class EvolutionConfig:
    """Initial topology plus the era schedule."""

    base: GeneratorConfig = field(default_factory=GeneratorConfig)
    eras: List[Era] = field(default_factory=list)

    @classmethod
    def default_series(
        cls, start_ases: int = 600, eras: int = 6, growth: float = 0.35, seed: int = 7
    ) -> "EvolutionConfig":
        """A 1998→2013-style schedule: growth plus accelerating peering."""
        base = GeneratorConfig(
            n_ases=start_ases, seed=seed, peering_richness=0.6, ixps_enabled=True
        )
        schedule = []
        for i in range(eras):
            schedule.append(
                Era(
                    label=f"era-{i + 1}",
                    new_ases=int(start_ases * growth * (1.0 + 0.4 * i)),
                    peering_boost=0.015 * (i + 1),
                    clique_entrants=1 if i in (2, 4) else 0,
                    regional_bias=min(0.9, 0.25 + 0.13 * i),
                )
            )
        return cls(base=base, eras=schedule)


def generate_series(config: EvolutionConfig) -> List[Tuple[str, ASGraph]]:
    """Produce ``[(label, graph), ...]`` snapshots, one per era plus base.

    Snapshots are deep copies: mutating a later era never changes an
    earlier snapshot.
    """
    allocator = PrefixAllocator()
    rng = random.Random(config.base.seed ^ 0x5EED)
    graph = generate_topology(config.base, allocator=allocator)
    snapshots: List[Tuple[str, ASGraph]] = [("base", copy.deepcopy(graph))]
    next_asn = max(a.asn for a in graph.ases()) + 1

    for era in config.eras:
        next_asn = _grow(graph, era, rng, allocator, next_asn)
        _densify_peering(graph, era, rng)
        _promote_clique_entrants(graph, era, rng)
        problems = graph.validate_invariants()
        if problems:
            raise TopologyError(f"era {era.label} broke invariants: {problems[:3]}")
        snapshots.append((era.label, copy.deepcopy(graph)))
    return snapshots


# role mix for newly arriving ASes: edge-heavy, like the real growth
_ARRIVAL_MIX: Sequence[Tuple[ASType, float]] = (
    (ASType.SMALL_TRANSIT, 0.05),
    (ASType.ACCESS, 0.22),
    (ASType.CONTENT, 0.15),
    (ASType.ENTERPRISE, 0.28),
    (ASType.STUB, 0.30),
)


def _types_by_role(graph: ASGraph) -> Dict[ASType, List[int]]:
    result: Dict[ASType, List[int]] = {}
    for asys in graph.ases():
        result.setdefault(asys.type, []).append(asys.asn)
    return result


def _weighted_provider(
    rng: random.Random, graph: ASGraph, pool: Sequence[int], exclude: set
) -> int:
    candidates = [c for c in pool if c not in exclude]
    if not candidates:
        raise TopologyError("no provider candidates during growth")
    weights = [len(graph.customers[c]) + 1 for c in candidates]
    return rng.choices(candidates, weights=weights, k=1)[0]


def _grow(
    graph: ASGraph,
    era: Era,
    rng: random.Random,
    allocator: PrefixAllocator,
    next_asn: int,
) -> int:
    roles = _types_by_role(graph)
    transit_pool = (
        roles.get(ASType.SMALL_TRANSIT, [])
        + roles.get(ASType.LARGE_TRANSIT, [])
        + roles.get(ASType.CLIQUE, [])
    )
    edge_pool = transit_pool + roles.get(ASType.ACCESS, [])
    regions = max((a.region for a in graph.ases()), default=0) + 1
    type_choices = [t for t, _ in _ARRIVAL_MIX]
    type_weights = [w for _, w in _ARRIVAL_MIX]

    for _ in range(era.new_ases):
        as_type = rng.choices(type_choices, weights=type_weights, k=1)[0]
        asn = next_asn
        next_asn += 1
        new_as = AS(asn=asn, type=as_type, region=rng.randrange(regions))
        graph.add_as(new_as)
        lo, hi, len_lo, len_hi = _PREFIX_PLAN[as_type]
        for _ in range(rng.randint(lo, max(lo, hi))):
            new_as.prefixes.append(allocator.allocate(rng.randint(len_lo, len_hi)))

        pool = edge_pool if as_type in (ASType.ENTERPRISE, ASType.STUB) else transit_pool
        exclude = {asn}
        n_providers = 1 if as_type is ASType.STUB else rng.choice((1, 1, 2))
        clique_set = {
            a.asn for a in graph.ases() if a.type is ASType.CLIQUE
        }
        for _ in range(n_providers):
            choices = pool
            if era.regional_bias and rng.random() < era.regional_bias:
                regional = [c for c in pool if c not in clique_set]
                if regional:
                    choices = regional
            provider = _weighted_provider(rng, graph, choices, exclude)
            graph.add_p2c(provider, asn)
            exclude.add(provider)
        roles.setdefault(as_type, []).append(asn)
        if as_type is ASType.SMALL_TRANSIT:
            transit_pool.append(asn)
            edge_pool.append(asn)
        elif as_type is ASType.ACCESS:
            edge_pool.append(asn)
    return next_asn


def _densify_peering(graph: ASGraph, era: Era, rng: random.Random) -> None:
    """Add new content↔access and content↔content peer links."""
    if era.peering_boost <= 0:
        return
    roles = _types_by_role(graph)
    content = roles.get(ASType.CONTENT, [])
    access = roles.get(ASType.ACCESS, [])
    for a in content:
        for b in access:
            if graph.relationship(a, b) is None and rng.random() < era.peering_boost:
                graph.add_p2p(a, b)
        for b in content:
            if (
                a < b
                and graph.relationship(a, b) is None
                and rng.random() < era.peering_boost
            ):
                graph.add_p2p(a, b)


def _promote_clique_entrants(graph: ASGraph, era: Era, rng: random.Random) -> None:
    """Promote large-transit ASes to tier-1: peer with the whole clique,
    drop all providers (they become transit-free)."""
    for _ in range(era.clique_entrants):
        roles = _types_by_role(graph)
        candidates = sorted(
            roles.get(ASType.LARGE_TRANSIT, []),
            key=lambda asn: len(graph.customers[asn]),
            reverse=True,
        )
        if not candidates:
            return
        entrant = candidates[0]
        clique = graph.clique_asns()
        for provider in list(graph.providers[entrant]):
            graph.remove_link(provider, entrant)
        for member in clique:
            existing = graph.relationship(entrant, member)
            if existing is Relationship.P2C:
                graph.remove_link(entrant, member)
                existing = None
            if existing is None:
                graph.add_p2p(entrant, member)
        graph.get_as(entrant).type = ASType.CLIQUE
