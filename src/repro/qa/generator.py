"""Randomized world generation for the QA sweep.

Each seed deterministically maps to one *world*: a generator + collector
configuration drawn from a pool of shapes chosen to hit the corner
cases hand-written tests miss — tiny cliques, dense multihoming,
prepend-heavy noise, single-vantage-point visibility, heavy partial
feeds and route leaks.  The same seed always produces the same world,
so a failing seed is a complete reproduction recipe.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bgp.collector import Collector, CollectorConfig, PathCorpus
from repro.bgp.noise import NoiseConfig
from repro.core.paths import PathSet
from repro.topology.generator import GeneratorConfig, generate_topology
from repro.topology.model import ASGraph

#: the adversarial shape pool; ``seed % len(SHAPES)`` picks one, so a
#: contiguous seed sweep covers every shape
SHAPES = (
    "baseline",
    "clean",
    "dense-multihome",
    "sparse-multihome",
    "prepend-heavy",
    "single-vp",
    "partial-feeds",
    "tiny-clique",
    "leaky",
    "noisy",
)


@dataclass(frozen=True)
class WorldSpec:
    """A fully determined QA workload (derived from one seed)."""

    seed: int
    shape: str
    generator: GeneratorConfig
    collector: CollectorConfig

    @property
    def label(self) -> str:
        return f"seed {self.seed} ({self.shape})"


@dataclass
class QaWorld:
    """One materialized world: topology, corpus and sanitized paths."""

    spec: WorldSpec
    graph: ASGraph
    corpus: PathCorpus
    paths: PathSet


def world_spec(seed: int) -> WorldSpec:
    """The deterministic world for ``seed``.

    Base parameters are jittered by a seed-derived RNG; the shape then
    pushes one dimension to an extreme.  Worlds are deliberately small
    (60–140 ASes) so a full sweep stays inside a CI smoke budget.
    """
    shape = SHAPES[seed % len(SHAPES)]
    rng = random.Random((seed << 8) ^ 0x5EED)
    n_ases = rng.randrange(60, 140)
    clique_size = rng.randrange(3, 8)
    n_vps = rng.randrange(4, 12)
    extra_provider_prob = rng.uniform(0.2, 0.6)
    noise = NoiseConfig(seed=seed + 1)
    partial = 0.25

    if shape == "clean":
        noise = NoiseConfig.none()
        partial = 0.0
    elif shape == "dense-multihome":
        extra_provider_prob = 0.9
    elif shape == "sparse-multihome":
        extra_provider_prob = 0.05
    elif shape == "prepend-heavy":
        noise = NoiseConfig(seed=seed + 1, prepend_prob=0.5, max_prepend=4)
    elif shape == "single-vp":
        n_vps = 1
    elif shape == "partial-feeds":
        partial = 0.8
    elif shape == "tiny-clique":
        clique_size = 2
        n_ases = max(n_ases, clique_size + 20)
    elif shape == "noisy":
        noise = NoiseConfig(
            seed=seed + 1,
            prepend_prob=0.15,
            poison_prob=0.05,
            loop_prob=0.03,
            reserved_asn_prob=0.02,
        )

    generator = GeneratorConfig(
        n_ases=n_ases,
        seed=seed * 1_000_003 + 7,
        clique_size=clique_size,
        extra_provider_prob=extra_provider_prob,
        max_providers=6 if shape == "dense-multihome" else 4,
    )
    collector = CollectorConfig(
        n_vps=n_vps,
        seed=seed * 31 + 5,
        partial_feed_fraction=partial,
        noise=noise,
        n_route_leakers=3 if shape == "leaky" else 0,
    )
    return WorldSpec(
        seed=seed, shape=shape, generator=generator, collector=collector
    )


def build_world(spec: WorldSpec) -> QaWorld:
    """Materialize a spec: generate, collect, sanitize."""
    graph = generate_topology(spec.generator)
    corpus = Collector(graph, spec.collector).run()
    paths = PathSet.sanitize(corpus.paths, ixp_asns=graph.ixp_asns())
    return QaWorld(spec=spec, graph=graph, corpus=corpus, paths=paths)
