"""The QA sweep driver: worlds → invariants → shrink → repro files.

``run_qa`` is what ``repro-asrank qa --seeds N`` executes.  Every world
runs all ten invariant families; the corpus-level families (1–3) are
shrunk on failure and the minimal corpus is written under
``benchmarks/repros/`` together with a one-line replay command, so a
red sweep is immediately actionable.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional, Sequence, Tuple

from repro import perf
from repro.datasets.serialization import load_paths, save_paths
from repro.qa.generator import QaWorld, build_world, world_spec
from repro.qa.invariants import (
    Violation,
    check_collection,
    check_cones,
    check_differential,
    check_hierarchy,
    check_path_serving,
    check_propagation,
    check_round_trips,
    check_serving,
    check_stream,
    check_timeline,
)
from repro.qa.shrink import shrink_paths

Path = Tuple[int, ...]


@dataclass
class QaConfig:
    """Sweep shape and failure-handling knobs."""

    seeds: int = 20
    base_seed: int = 0
    repro_dir: str = os.path.join("benchmarks", "repros")
    shrink: bool = True
    max_shrink_evals: int = 250
    # family 5 re-runs the whole collection twice per world; checking
    # every Nth world keeps the sweep inside a CI smoke budget while a
    # full seed range still covers every shape
    collection_every: int = 4
    collection_workers: Sequence[int] = (2, 3)
    # family 6 (batched vs reference propagation) re-collects four
    # times per checked world; same every-Nth budget trade-off, offset
    # from family 5 below so the two never stack on one world
    propagation_every: int = 2
    # family 9 builds its own fixed-size three-era series per world
    # (cheap — tens of milliseconds), so it runs every world by default
    timeline_every: int = 1
    # family 10 recomputes the batch oracle after every streamed
    # publish (~8 full pipelines per checked world), so it runs every
    # other world, offset from families 5/6 below
    stream_every: int = 2


@dataclass
class QaReport:
    """Everything one sweep found."""

    worlds: int = 0
    checks: int = 0
    violations: List[Violation] = field(default_factory=list)
    repros: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "clean" if self.ok else f"{len(self.violations)} violations"
        return (
            f"qa: {self.worlds} worlds, {self.checks} invariant checks, "
            f"{status}"
        )


def _corpus_violations(
    raw_paths: List[Path], ixp_asns: FrozenSet[int], world: str
) -> List[Violation]:
    """Families 1–3 from a raw corpus (the shrink predicate's view)."""
    violations, fast = check_differential(raw_paths, ixp_asns, world)
    violations.extend(check_hierarchy(fast, world))
    violations.extend(check_cones(fast, world))
    return violations


def _save_repro(
    config: QaConfig,
    slug: str,
    paths: List[Path],
    comments: Sequence[str],
) -> str:
    os.makedirs(config.repro_dir, exist_ok=True)
    repro_file = os.path.join(config.repro_dir, f"{slug}.paths.txt")
    save_paths(repro_file, paths, comments=list(comments))
    return repro_file


def _shrink_and_save(
    config: QaConfig,
    world: QaWorld,
    violations: List[Violation],
    log: Callable[[str], None],
) -> Optional[str]:
    """Shrink the corpus against the first violation's invariant."""
    first = violations[0]
    ixp_asns = world.graph.ixp_asns()

    def still_fails(candidate: List[Path]) -> bool:
        found = _corpus_violations(candidate, ixp_asns, world.spec.label)
        return any(v.invariant == first.invariant for v in found)

    corpus_paths = [tuple(p) for p in world.corpus.paths]
    if config.shrink:
        with perf.stage("qa-shrink"):
            minimal = shrink_paths(
                corpus_paths, still_fails, max_evals=config.max_shrink_evals
            )
    else:
        minimal = corpus_paths
    slug = f"qa-seed{world.spec.seed}-" + first.invariant.replace("/", "-")
    repro_file = os.path.join(config.repro_dir, f"{slug}.paths.txt")
    _save_repro(
        config,
        slug,
        minimal,
        comments=[
            f"qa repro: {first.invariant} on {world.spec.label}",
            f"shrunk to {len(minimal)} of {len(corpus_paths)} paths",
            f"reproduce with: repro-asrank qa --replay {repro_file}",
        ],
    )
    log(
        f"  shrunk {len(corpus_paths)} -> {len(minimal)} paths; "
        f"reproduce with: repro-asrank qa --replay {repro_file}"
    )
    return repro_file


def run_qa(
    config: Optional[QaConfig] = None,
    log: Optional[Callable[[str], None]] = None,
) -> QaReport:
    """Run the full sweep; returns a report (never raises on violations)."""
    from repro.core.inference import infer_relationships

    config = config or QaConfig()
    log = log or (lambda line: None)
    report = QaReport()
    scratch = tempfile.mkdtemp(prefix="repro-qa-")
    try:
        with perf.stage("qa"):
            for index in range(config.seeds):
                seed = config.base_seed + index
                spec = world_spec(seed)
                with perf.stage("qa-world"):
                    world = build_world(spec)
                label = spec.label
                world_violations: List[Violation] = []

                with perf.stage("qa-corpus-invariants"):
                    corpus_violations = _corpus_violations(
                        list(world.corpus.paths),
                        world.graph.ixp_asns(),
                        label,
                    )
                report.checks += 3
                world_violations.extend(corpus_violations)

                if corpus_violations:
                    repro = _shrink_and_save(
                        config, world, corpus_violations, log
                    )
                    if repro:
                        report.repros.append(repro)
                else:
                    # families 4–8 ride on a healthy inference result
                    result = infer_relationships(world.paths)
                    with perf.stage("qa-round-trips"):
                        world_violations.extend(
                            check_round_trips(
                                result,
                                world.corpus,
                                os.path.join(scratch, f"world{seed}"),
                                label,
                            )
                        )
                    report.checks += 1
                    with perf.stage("qa-serving"):
                        world_violations.extend(
                            check_serving(
                                result,
                                os.path.join(scratch, f"world{seed}"),
                                label,
                            )
                        )
                    report.checks += 1
                    with perf.stage("qa-path-serving"):
                        world_violations.extend(
                            check_path_serving(result, label)
                        )
                    report.checks += 1
                    if (
                        config.collection_every
                        and index % config.collection_every == 0
                    ):
                        with perf.stage("qa-collection"):
                            world_violations.extend(
                                check_collection(
                                    world, config.collection_workers
                                )
                            )
                        report.checks += 1
                    if (
                        config.propagation_every
                        and (index + 1) % config.propagation_every == 0
                    ):
                        with perf.stage("qa-propagation"):
                            world_violations.extend(
                                check_propagation(world)
                            )
                        report.checks += 1
                    if (
                        config.timeline_every
                        and (index + 2) % config.timeline_every == 0
                    ):
                        with perf.stage("qa-timeline"):
                            world_violations.extend(
                                check_timeline(
                                    os.path.join(scratch, f"world{seed}"),
                                    label,
                                    spec.seed,
                                )
                            )
                        report.checks += 1
                    if (
                        config.stream_every
                        and (index + 3) % config.stream_every == 0
                    ):
                        with perf.stage("qa-stream"):
                            world_violations.extend(
                                check_stream(world, label, spec.seed)
                            )
                        report.checks += 1

                for violation in world_violations:
                    log(f"FAIL {violation}")
                report.violations.extend(world_violations)
                report.worlds += 1
                log(
                    f"world {label}: "
                    + ("ok" if not world_violations else "FAILED")
                )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    log(report.summary())
    return report


def replay_paths(
    path_file: str, log: Optional[Callable[[str], None]] = None
) -> QaReport:
    """Re-run the corpus-level invariant families on a saved repro."""
    log = log or (lambda line: None)
    report = QaReport(worlds=1, checks=3)
    raw = load_paths(path_file)
    label = f"replay {os.path.basename(path_file)}"
    report.violations = _corpus_violations(raw, frozenset(), label)
    for violation in report.violations:
        log(f"FAIL {violation}")
    log(report.summary())
    return report
