"""Corpus shrinking: reduce a failing path corpus to a minimal repro.

Classic delta debugging (ddmin) over the raw path list: try dropping
large chunks first, halve the chunk size when nothing can be dropped,
and finish with a single-path elimination pass.  The predicate is "the
invariant still fails", so the result is a locally minimal corpus —
removing any one remaining path makes the failure disappear.

Each predicate evaluation re-runs inference, so the total number of
evaluations is capped; shrinking is best-effort within that budget.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

Path = Tuple[int, ...]


def shrink_paths(
    paths: Sequence[Path],
    still_fails: Callable[[List[Path]], bool],
    max_evals: int = 250,
) -> List[Path]:
    """Smallest corpus (under the eval budget) on which the failure holds.

    ``still_fails`` must be True for ``paths`` itself; if it is not
    (a flaky predicate), the input is returned unshrunk.
    """
    current = list(paths)
    evals = 0

    def fails(candidate: List[Path]) -> bool:
        nonlocal evals
        evals += 1
        return still_fails(candidate)

    if not current or not fails(current):
        return current

    chunks = 2
    while len(current) >= 2 and evals < max_evals:
        size = max(1, len(current) // chunks)
        removed_any = False
        start = 0
        while start < len(current) and evals < max_evals:
            candidate = current[:start] + current[start + size:]
            if candidate and fails(candidate):
                current = candidate
                removed_any = True
                # keep ``start`` where it is: the next chunk slid into place
            else:
                start += size
        if removed_any:
            chunks = max(2, chunks - 1)
        elif size == 1:
            break  # single-path granularity and nothing removable: minimal
        else:
            chunks = min(len(current), chunks * 2)
    return current
