"""Seeded, property-based differential QA for the whole pipeline.

The paper's core claim is *validation*, so the reproduction carries its
own correctness harness: :func:`run_qa` sweeps randomized worlds
(sizes, clique shapes, multihoming density, noise on/off, adversarial
shapes like prepend-heavy and single-VP corpora) and asserts six
invariant families over each one:

1. **differential** — the fast engine and ``InferenceConfig(fast=False)``
   produce bit-identical links, steps, providers and cones;
2. **hierarchy** — the inferred p2c graph is acyclic and clique members
   are mutually transit-free;
3. **cones** — every cone definition matches its reference oracle,
   contains self, nests inside the recursive closure and is monotone
   along p2c edges;
4. **round-trip** — ``save_*``/``load_*`` and the MRT RIB/update codecs
   (withdrawals included) reproduce their inputs exactly;
5. **collection** — serial and parallel collector runs agree for every
   worker count;
6. **propagation** — the batched multi-origin propagation engine and
   the per-origin reference sweeps emit bit-identical corpora (default
   and odd batch sizes, v4 and the restricted v6 plane).

On failure the harness shrinks the corpus to a minimal repro, writes it
under ``benchmarks/repros/`` and prints a one-line replay command.
"""

from repro.qa.generator import QaWorld, WorldSpec, build_world, world_spec
from repro.qa.invariants import (
    Violation,
    check_collection,
    check_cones,
    check_differential,
    check_hierarchy,
    check_propagation,
    check_round_trips,
)
from repro.qa.runner import QaConfig, QaReport, replay_paths, run_qa
from repro.qa.shrink import shrink_paths

__all__ = [
    "QaConfig",
    "QaReport",
    "QaWorld",
    "Violation",
    "WorldSpec",
    "build_world",
    "check_collection",
    "check_cones",
    "check_differential",
    "check_hierarchy",
    "check_propagation",
    "check_round_trips",
    "replay_paths",
    "run_qa",
    "shrink_paths",
    "world_spec",
]
