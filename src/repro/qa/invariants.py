"""The ten invariant families the QA sweep asserts per world.

Every checker returns a list of :class:`Violation` (empty = clean)
instead of raising, so one sweep reports everything it finds and the
runner can shrink each failure independently.

The cone-nesting family checks what the algorithm actually guarantees:
``bgp-observed ⊆ recursive`` is a theorem (a descending run is a p2c
chain, hence inside the closure), while per-AS ``ppdc ⊇ bgp-observed``
is *not* — a single-VP world observes descending runs from the vantage
point itself, which by definition is never entered from a provider or
peer (see docs/INVARIANTS.md).  Each definition is instead pinned to
its reference oracle, which is strictly stronger.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.core.cone import (
    ConeDefinition,
    compute_cones,
    reference_bgp_observed_cones,
    reference_ppdc_cones,
    reference_recursive_cones,
)
from repro.core.inference import (
    InferenceConfig,
    InferenceResult,
    infer_relationships,
)
from repro.core.paths import PathSet
from repro.datasets.serialization import (
    load_as_rel,
    load_paths,
    load_ppdc_ases,
    save_as_rel,
    save_paths,
    save_ppdc_ases,
)
from repro.relationships import Relationship


@dataclass(frozen=True)
class Violation:
    """One invariant failure, attributable to a world and a checker."""

    invariant: str
    world: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.world}] {self.invariant}: {self.detail}"


def _label_map(
    result: InferenceResult,
) -> Dict[Tuple[int, int], Tuple[Relationship, object, object]]:
    """Canonical pair -> (relationship, provider, step) for comparison."""
    return {
        (rel.a, rel.b): (rel.relationship, rel.provider, rel.step)
        for rel in result
    }


def _cone_sets(result: InferenceResult) -> Dict[str, Dict[int, Set[int]]]:
    return {
        definition.value: compute_cones(result, definition)
        for definition in ConeDefinition
    }


# ---------------------------------------------------------------------------
# family 1: fast vs reference differential
# ---------------------------------------------------------------------------


def check_differential(
    raw_paths: Iterable[Sequence[int]],
    ixp_asns: FrozenSet[int],
    world: str,
    config: InferenceConfig = InferenceConfig(),
) -> Tuple[List[Violation], InferenceResult]:
    """Fast and reference engines must agree bit for bit.

    Returns the violations plus the fast result so downstream families
    can reuse it without re-running inference.
    """
    violations: List[Violation] = []
    paths = PathSet.sanitize(raw_paths, ixp_asns=ixp_asns)
    fast = infer_relationships(paths, replace(config, fast=True))
    ref = infer_relationships(paths, replace(config, fast=False))

    if fast.clique.members != ref.clique.members:
        violations.append(
            Violation(
                "differential/clique",
                world,
                f"fast {fast.clique.members} != ref {ref.clique.members}",
            )
        )
    if fast.discarded_poisoned != ref.discarded_poisoned:
        violations.append(
            Violation(
                "differential/poisoned-filter",
                world,
                f"fast discarded {fast.discarded_poisoned}, "
                f"ref {ref.discarded_poisoned}",
            )
        )
    fast_labels, ref_labels = _label_map(fast), _label_map(ref)
    if fast_labels != ref_labels:
        only_fast = sorted(set(fast_labels) - set(ref_labels))[:3]
        only_ref = sorted(set(ref_labels) - set(fast_labels))[:3]
        mismatched = sorted(
            pair
            for pair in set(fast_labels) & set(ref_labels)
            if fast_labels[pair] != ref_labels[pair]
        )[:3]
        violations.append(
            Violation(
                "differential/links",
                world,
                f"label maps differ (fast {len(fast_labels)} links, ref "
                f"{len(ref_labels)}): fast-only {only_fast}, ref-only "
                f"{only_ref}, relabeled {mismatched}",
            )
        )
    fast_cones, ref_cones = _cone_sets(fast), _cone_sets(ref)
    for name in fast_cones:
        if fast_cones[name] != ref_cones[name]:
            diff = [
                asn
                for asn in set(fast_cones[name]) | set(ref_cones[name])
                if fast_cones[name].get(asn) != ref_cones[name].get(asn)
            ]
            violations.append(
                Violation(
                    f"differential/cones/{name}",
                    world,
                    f"{len(diff)} cones differ, e.g. AS{sorted(diff)[:3]}",
                )
            )
    return violations, fast


# ---------------------------------------------------------------------------
# family 2: hierarchy (acyclic p2c, transit-free clique)
# ---------------------------------------------------------------------------


def check_hierarchy(result: InferenceResult, world: str) -> List[Violation]:
    """No c2p cycles; clique members have no providers and peer mutually."""
    violations: List[Violation] = []

    # Kahn's algorithm over the provider->customer adjacency: leftovers
    # after peeling every zero-in-degree node form a cycle
    indegree: Dict[int, int] = {}
    for provider, customers in result.customers.items():
        indegree.setdefault(provider, 0)
        for customer in customers:
            indegree[customer] = indegree.get(customer, 0) + 1
    frontier = [asn for asn, deg in indegree.items() if deg == 0]
    seen = 0
    while frontier:
        node = frontier.pop()
        seen += 1
        for customer in result.customers.get(node, ()):
            indegree[customer] -= 1
            if indegree[customer] == 0:
                frontier.append(customer)
    if seen != len(indegree):
        cyclic = sorted(asn for asn, deg in indegree.items() if deg > 0)
        violations.append(
            Violation(
                "hierarchy/p2c-cycle",
                world,
                f"{len(cyclic)} ASes on provider cycles, e.g. {cyclic[:5]}",
            )
        )

    members = result.clique.member_set
    for member in sorted(members):
        providers = result.providers_of_asn(member)
        if providers:
            violations.append(
                Violation(
                    "hierarchy/clique-transit-free",
                    world,
                    f"clique AS{member} has providers {sorted(providers)}",
                )
            )
    for a in sorted(members):
        for b in sorted(members):
            if a >= b:
                continue
            rel = result.relationship(a, b)
            if rel is Relationship.P2C:
                violations.append(
                    Violation(
                        "hierarchy/clique-p2p",
                        world,
                        f"clique pair AS{a}-AS{b} labeled p2c",
                    )
                )
    return violations


# ---------------------------------------------------------------------------
# family 3: cone oracles, nesting and monotonicity
# ---------------------------------------------------------------------------


def check_cones(result: InferenceResult, world: str) -> List[Violation]:
    violations: List[Violation] = []
    cones = {
        ConeDefinition.RECURSIVE: compute_cones(
            result, ConeDefinition.RECURSIVE
        ),
        ConeDefinition.BGP_OBSERVED: compute_cones(
            result, ConeDefinition.BGP_OBSERVED
        ),
        ConeDefinition.PROVIDER_PEER_OBSERVED: compute_cones(
            result, ConeDefinition.PROVIDER_PEER_OBSERVED
        ),
    }
    oracles = {
        ConeDefinition.RECURSIVE: reference_recursive_cones(result),
        ConeDefinition.BGP_OBSERVED: reference_bgp_observed_cones(result),
        ConeDefinition.PROVIDER_PEER_OBSERVED: reference_ppdc_cones(result),
    }
    for definition, computed in cones.items():
        oracle = oracles[definition]
        for asn in set(computed) | set(oracle):
            if computed.get(asn, {asn}) != oracle.get(asn, {asn}):
                violations.append(
                    Violation(
                        f"cones/oracle/{definition.value}",
                        world,
                        f"AS{asn}: computed {sorted(computed.get(asn, ()))[:6]}"
                        f" != oracle {sorted(oracle.get(asn, ()))[:6]}",
                    )
                )
                break  # one per definition is enough to localize
        for asn, cone in computed.items():
            if asn not in cone:
                violations.append(
                    Violation(
                        f"cones/self/{definition.value}",
                        world,
                        f"AS{asn} missing from its own cone",
                    )
                )
                break

    recursive = cones[ConeDefinition.RECURSIVE]
    observed = cones[ConeDefinition.BGP_OBSERVED]
    for asn, cone in observed.items():
        if not cone <= recursive.get(asn, {asn}):
            extra = sorted(cone - recursive.get(asn, {asn}))
            violations.append(
                Violation(
                    "cones/nesting",
                    world,
                    f"bgp-observed cone of AS{asn} escapes the recursive "
                    f"closure: {extra[:5]}",
                )
            )
            break

    # monotonicity: a provider's recursive cone contains each customer's
    for provider, customers in result.customers.items():
        stop = False
        for customer in customers:
            inner = recursive.get(customer, {customer})
            outer = recursive.get(provider, {provider})
            if not (inner | {customer}) <= outer:
                violations.append(
                    Violation(
                        "cones/monotonic",
                        world,
                        f"recursive cone of AS{provider} misses part of "
                        f"customer AS{customer}'s cone",
                    )
                )
                stop = True
                break
        if stop:
            break
    return violations


# ---------------------------------------------------------------------------
# family 4: serialization and MRT round-trips
# ---------------------------------------------------------------------------


def check_round_trips(
    result: InferenceResult,
    corpus,
    directory: str,
    world: str,
) -> List[Violation]:
    """``save_*``/``load_*`` and the MRT codecs must invert exactly."""
    from repro.mrt.reader import read_rib_dump
    from repro.mrt.updates import (
        read_update_dump,
        rib_from_updates,
        write_update_dump,
    )
    from repro.mrt.writer import MrtWriter, write_rib_dump

    violations: List[Violation] = []
    os.makedirs(directory, exist_ok=True)

    # as-rel
    as_rel_file = os.path.join(directory, "qa.as-rel.txt")
    save_as_rel(as_rel_file, result, comments=["qa round-trip"])
    expected_rows = set()
    for rel in result:
        if rel.relationship is Relationship.P2C:
            expected_rows.add((rel.provider, rel.customer, Relationship.P2C))
        else:
            expected_rows.add((rel.a, rel.b, rel.relationship))
    loaded_rows = set(load_as_rel(as_rel_file))
    if loaded_rows != expected_rows:
        violations.append(
            Violation(
                "round-trip/as-rel",
                world,
                f"{len(loaded_rows ^ expected_rows)} rows differ",
            )
        )

    # ppdc-ases
    ppdc_file = os.path.join(directory, "qa.ppdc-ases.txt")
    cones = compute_cones(result, ConeDefinition.PROVIDER_PEER_OBSERVED)
    save_ppdc_ases(ppdc_file, cones)
    loaded_cones = load_ppdc_ases(ppdc_file)
    if loaded_cones != cones:
        violations.append(
            Violation("round-trip/ppdc-ases", world, "cone mapping differs")
        )

    # path file
    paths_file = os.path.join(directory, "qa.paths.txt")
    save_paths(paths_file, result.paths.paths)
    if load_paths(paths_file) != list(result.paths.paths):
        violations.append(
            Violation("round-trip/paths", world, "path list differs")
        )

    # MRT RIB dump
    rib_file = os.path.join(directory, "qa.rib.mrt")
    write_rib_dump(rib_file, corpus.rib)
    original = {
        (entry.prefix, entry.vp): (tuple(entry.path), tuple(entry.communities))
        for entry in corpus.rib
    }
    rebuilt = {
        (row.prefix, row.peer_asn): (row.as_path, row.communities)
        for row in read_rib_dump(rib_file)
    }
    if rebuilt != original:
        violations.append(
            Violation(
                "round-trip/mrt-rib",
                world,
                f"{len(set(rebuilt) ^ set(original))} key mismatches",
            )
        )

    # MRT update stream (announce-only burst)
    updates_file = os.path.join(directory, "qa.updates.mrt")
    write_update_dump(updates_file, corpus.rib)
    rebuilt = {
        (row.prefix, row.peer_asn): (row.as_path, row.communities)
        for row in rib_from_updates(read_update_dump(updates_file))
    }
    if rebuilt != original:
        violations.append(
            Violation(
                "round-trip/mrt-updates",
                world,
                f"{len(set(rebuilt) ^ set(original))} key mismatches",
            )
        )

    # MRT update stream with withdrawals: withdraw every third row, then
    # re-announce every ninth with a fresh path — the rebuilt table must
    # equal applying those operations to the in-memory table
    withdrawn_file = os.path.join(directory, "qa.withdrawn.mrt")
    rows = sorted(
        corpus.rib, key=lambda e: (e.prefix, e.vp, e.path)
    )
    expected = dict(original)
    with open(withdrawn_file, "wb") as stream:
        writer = MrtWriter(stream)
        for entry in rows:
            writer.write_bgp4mp_update(
                peer_asn=entry.vp,
                local_asn=64700,
                as_path=tuple(entry.path),
                announced=(entry.prefix,),
                communities=tuple(entry.communities),
            )
        for i, entry in enumerate(rows):
            if i % 3 == 0:
                writer.write_bgp4mp_update(
                    peer_asn=entry.vp,
                    local_asn=64700,
                    as_path=(),
                    announced=(),
                    withdrawn=(entry.prefix,),
                )
                expected.pop((entry.prefix, entry.vp), None)
        for i, entry in enumerate(rows):
            if i % 9 == 0:
                new_path = (entry.vp,) + tuple(entry.path)[-1:]
                writer.write_bgp4mp_update(
                    peer_asn=entry.vp,
                    local_asn=64700,
                    as_path=new_path,
                    announced=(entry.prefix,),
                )
                expected[(entry.prefix, entry.vp)] = (new_path, ())
    rebuilt = {
        (row.prefix, row.peer_asn): (row.as_path, row.communities)
        for row in rib_from_updates(read_update_dump(withdrawn_file))
    }
    if rebuilt != expected:
        violations.append(
            Violation(
                "round-trip/mrt-withdrawals",
                world,
                f"{len(set(rebuilt) ^ set(expected))} key mismatches after "
                "withdraw/re-announce",
            )
        )
    return violations


# ---------------------------------------------------------------------------
# family 5: serial == parallel collection
# ---------------------------------------------------------------------------


def _corpus_key(corpus):
    return (
        corpus.paths,
        corpus.path_counts,
        [(r.vp, r.prefix, r.path, r.communities) for r in corpus.rib],
    )


def check_collection(
    world, worker_counts: Sequence[int] = (2, 3)
) -> List[Violation]:
    """Every worker count must reproduce the serial corpus bit for bit."""
    from repro.bgp.collector import Collector

    violations: List[Violation] = []
    serial_key = _corpus_key(world.corpus)
    for workers in worker_counts:
        config = replace(world.spec.collector, workers=workers)
        parallel = Collector(world.graph, config).run()
        if _corpus_key(parallel) != serial_key:
            violations.append(
                Violation(
                    "collection/serial-vs-parallel",
                    world.spec.label,
                    f"workers={workers} corpus differs from serial",
                )
            )
    return violations


# ---------------------------------------------------------------------------
# family 6: batched propagation == reference sweeps
# ---------------------------------------------------------------------------


def check_propagation(world) -> List[Violation]:
    """The batched engine must reproduce the reference corpus bit for bit.

    ``world.corpus`` is collected with the default (batched) engine;
    this family re-collects with ``PropagationConfig(batched=False)``
    (the pure-Python one-origin-at-a-time sweeps) and with a deliberately
    awkward batch size, on both address planes.  Leaky world shapes
    exercise the per-row leak pass, and the v6 plane exercises the
    restricted :class:`~repro.bgp.propagation.GraphIndex`.
    """
    from repro.bgp.collector import Collector
    from repro.bgp.propagation import PropagationConfig

    violations: List[Violation] = []
    label = world.spec.label
    batched_key = _corpus_key(world.corpus)
    variants = (
        ("reference", PropagationConfig(batched=False)),
        ("odd-batch", PropagationConfig(batched=True, batch_size=17)),
    )
    for name, propagation in variants:
        config = replace(world.spec.collector, propagation=propagation)
        corpus = Collector(world.graph, config).run()
        if _corpus_key(corpus) != batched_key:
            violations.append(
                Violation(
                    f"propagation/{name}",
                    label,
                    "corpus differs from the batched engine's",
                )
            )

    # restricted (IPv6) plane: batched vs reference
    v6_batched = Collector(world.graph, world.spec.collector, plane="v6").run()
    v6_reference = Collector(
        world.graph,
        replace(
            world.spec.collector,
            propagation=PropagationConfig(batched=False),
        ),
        plane="v6",
    ).run()
    if _corpus_key(v6_batched) != _corpus_key(v6_reference):
        violations.append(
            Violation(
                "propagation/v6-plane",
                label,
                "batched v6 corpus differs from reference",
            )
        )
    return violations


# ---------------------------------------------------------------------------
# family 7: snapshot-served answers == the in-memory facade's
# ---------------------------------------------------------------------------


def check_serving(
    result: InferenceResult, directory: str, world: str
) -> List[Violation]:
    """Everything the query service answers must be bit-identical to
    the :class:`~repro.asrank.ASRank` facade on the same world.

    Covers the whole serving pipeline: facade → snapshot compilation →
    file container round-trip (checksummed save/load) → the handler
    layer's JSON, for relationships (every inferred link plus absent
    pairs), cone membership under all three definitions, and the full
    rank table.
    """
    from repro.asrank import ASRank
    from repro.serve.handlers import Api
    from repro.serve.snapshot import Snapshot
    from repro.serve.store import SnapshotStore, load_snapshot, save_snapshot

    violations: List[Violation] = []
    facade = ASRank(result.paths, config=result.config)
    facade._result = result

    os.makedirs(directory, exist_ok=True)
    snapshot_file = os.path.join(directory, "qa.snapshot")
    save_snapshot(Snapshot.build(facade), snapshot_file)
    # mmap mode: the zero-copy load path must be bit-identical to the
    # facade too (it falls back to lazy copies where mmap/numpy are
    # unavailable, so this also covers the fallback on the no-numpy leg)
    served = load_snapshot(snapshot_file, mode="mmap")

    # relationships + providers: every inferred link, bit for bit
    for a, b in result.links():
        if served.relationship(a, b) is not result.relationship(a, b) or (
            served.provider_of(a, b) != result.provider_of(a, b)
        ):
            violations.append(
                Violation(
                    "serving/relationship",
                    world,
                    f"AS{a}-AS{b}: served "
                    f"{served.relationship(a, b)}/"
                    f"{served.provider_of(a, b)} != facade "
                    f"{result.relationship(a, b)}/"
                    f"{result.provider_of(a, b)}",
                )
            )
            break
    # a non-link must stay a non-link (absent pairs answer 404)
    asns = sorted(result.paths.asns())
    linked = set(result.links())
    for a in asns[:10]:
        for b in asns[-10:]:
            pair = (a, b) if a <= b else (b, a)
            if a != b and pair not in linked:
                if served.relationship(a, b) is not None:
                    violations.append(
                        Violation(
                            "serving/phantom-link",
                            world,
                            f"AS{a}-AS{b} served a relationship the "
                            "facade never inferred",
                        )
                    )
                break

    # cones: all three definitions, every AS
    for definition in ConeDefinition:
        cones = facade.cones(definition)
        mismatch = next(
            (
                asn
                for asn in asns
                if served.cone(asn, definition) != cones.cone(asn)
            ),
            None,
        )
        if mismatch is not None:
            violations.append(
                Violation(
                    f"serving/cone/{definition.value}",
                    world,
                    f"AS{mismatch}: served cone differs from facade",
                )
            )

    # rank table: exact rows in exact order
    if served.ranks() != facade.rank():
        violations.append(
            Violation(
                "serving/rank",
                world,
                "served rank table differs from facade ranking",
            )
        )

    # the handler layer: JSON answers over the loaded snapshot
    api = Api(SnapshotStore(snapshot=served))
    for asn in asns[:5]:
        status, payload, _route, _c = api.handle("GET", f"/asns/{asn}", {})
        entry = served.rank_entry(asn)
        assert entry is not None
        if status != 200 or (
            payload["rank"],
            payload["cone"]["ases"],
            payload["neighbors"]["customers"],
            payload["neighbors"]["peers"],
            payload["neighbors"]["providers"],
        ) != (
            entry.rank,
            entry.cone_ases,
            len(result.customers_of_asn(asn)),
            len(result.peers_of_asn(asn)),
            len(result.providers_of_asn(asn)),
        ):
            violations.append(
                Violation(
                    "serving/handler-asn",
                    world,
                    f"/asns/{asn} JSON disagrees with the facade",
                )
            )
            break
        status, payload, _route, _c = api.handle(
            "GET", f"/asns/{asn}/cone",
            {"definition": "provider/peer-observed"},
        )
        if status != 200 or payload["members"] != sorted(
            facade.customer_cone(asn)
        ):
            violations.append(
                Violation(
                    "serving/handler-cone",
                    world,
                    f"/asns/{asn}/cone JSON disagrees with the facade",
                )
            )
            break
    return violations


def check_path_serving(
    result: InferenceResult, world: str
) -> List[Violation]:
    """Family 8: the path/what-if service equals the routing engine.

    Compiles the inference into a snapshot, drives the handler layer
    in-process, and independently recomputes every answer:

    * sampled ``GET /paths/{src}/{dst}`` responses must be bit-identical
      to :func:`propagate_batch` over the snapshot's own RelGraph;
    * an anycast query's winner and catchment must match an independent
      best-origin selection over those same tables;
    * a what-if diff (link drop + new peering + route leak) must be
      bit-identical to a from-scratch recompute: the mutated link rows
      rebuilt into a fresh RelGraph and propagated with the *reference*
      single-origin engine.
    """
    from repro.asrank import ASRank
    from repro.bgp.propagation import (
        GraphIndex,
        propagate_batch,
        propagate_origin,
    )
    from repro.graph.relgraph import RelGraph
    from repro.serve.handlers import Api
    from repro.serve.prediction import best_origin
    from repro.serve.snapshot import Snapshot
    from repro.serve.store import SnapshotStore
    import json

    violations: List[Violation] = []
    facade = ASRank(result.paths, config=result.config)
    facade._result = result
    snapshot = Snapshot.build(facade)
    api = Api(SnapshotStore(snapshot=snapshot))
    asns = snapshot.asns
    n = len(asns)
    if n < 3 or not snapshot._links():
        return violations

    # deterministic sample spread over the id space
    dsts = sorted({asns[0], asns[n // 3], asns[(2 * n) // 3], asns[-1]})
    srcs = sorted({asns[i] for i in range(0, n, max(1, n // 7))})

    gindex = GraphIndex(rel=snapshot.rel_graph())
    tables = dict(zip(dsts, propagate_batch(gindex, dsts)))

    # single-path answers, bit for bit
    for dst in dsts:
        for src in srcs:
            status, payload, _route, _c = api.handle(
                "GET", f"/paths/{src}/{dst}", {}
            )
            expected = tables[dst].path_from(gindex, gindex.index[src])
            served = (
                None if payload["path"] is None else tuple(payload["path"])
            )
            if status != 200 or served != expected:
                violations.append(
                    Violation(
                        "path-serving/path",
                        world,
                        f"GET /paths/{src}/{dst} served {served}, "
                        f"engine computes {expected}",
                    )
                )
                return violations

    # anycast: winner + catchment against an independent selection
    origins = dsts
    states = [tables[origin] for origin in origins]
    catchment = {str(origin): 0 for origin in origins}
    unreachable = 0
    for i in range(n):
        won = best_origin(origins, states, i)
        if won is None:
            unreachable += 1
        else:
            catchment[str(won)] += 1
    for src in srcs:
        status, payload, _route, _c = api.handle(
            "GET",
            f"/paths/{src}/{origins[0]}",
            {"origins": ",".join(str(o) for o in origins[1:])},
        )
        expected_winner = best_origin(origins, states, gindex.index[src])
        if (
            status != 200
            or payload["winner"] != expected_winner
            or payload["catchment"] != catchment
            or payload["unreachable"] != unreachable
        ):
            violations.append(
                Violation(
                    "path-serving/anycast",
                    world,
                    f"anycast from {src}: served winner "
                    f"{payload.get('winner')} != engine "
                    f"{expected_winner} (or catchment differs)",
                )
            )
            return violations

    # what-if: drop a real link, add a new peering, leak — served diff
    # must equal a from-scratch recompute on the mutated graph
    links = []
    for a_id, b_id, code, _flag in snapshot._links():
        a, b = asns[a_id], asns[b_id]
        links.append((a, b, Relationship(code), snapshot.provider_of(a, b)))
    drop_a, drop_b = links[len(links) // 2][0], links[len(links) // 2][1]
    new_pair = None
    for a in srcs:
        for b in reversed(srcs):
            if a != b and snapshot.relationship(a, b) is None:
                new_pair = (a, b)
                break
        if new_pair:
            break
    leaker = srcs[len(srcs) // 2]
    dst = dsts[-1]
    ops = [{"op": "drop_link", "a": drop_a, "b": drop_b},
           {"op": "leak", "asn": leaker}]
    if new_pair:
        ops.append(
            {"op": "add_peering", "a": new_pair[0], "b": new_pair[1]}
        )
    status, payload, _route, _c = api.handle(
        "POST", "/what-if", {},
        json.dumps({"dst": dst, "ops": ops}).encode(),
    )
    if status != 200:
        violations.append(
            Violation(
                "path-serving/what-if",
                world,
                f"what-if returned {status}: {payload}",
            )
        )
        return violations

    p2c = []
    p2p = []
    for a, b, rel, provider in links:
        if {a, b} == {drop_a, drop_b}:
            continue
        if rel is Relationship.P2C:
            p2c.append((provider, b if provider == a else a))
        else:  # p2p and s2s both route as peering
            p2p.append((a, b))
    if new_pair:
        p2p.append(new_pair)
    ref_gindex = GraphIndex(rel=RelGraph.from_links(asns, p2c, p2p))
    ref_state = propagate_origin(ref_gindex, dst, leakers={leaker})

    baseline = tables[dst]
    changed = unchanged = newly_unreachable = newly_reachable = 0
    expected_paths = {}
    for asn in asns:
        i = gindex.index[asn]
        ref_i = ref_gindex.index[asn]
        before = baseline.path_from(gindex, i)
        after = ref_state.path_from(ref_gindex, ref_i)
        expected_paths[asn] = (before, after)
        # the served diff also counts route-class-only changes
        if before == after and int(baseline.cls[i]) == int(ref_state.cls[ref_i]):
            unchanged += 1
            continue
        changed += 1
        if after is None:
            newly_unreachable += 1
        elif before is None:
            newly_reachable += 1
    served_counts = (
        payload["changed"], payload["unchanged"],
        payload["newly_unreachable"], payload["newly_reachable"],
    )
    if served_counts != (
        changed, unchanged, newly_unreachable, newly_reachable
    ):
        violations.append(
            Violation(
                "path-serving/what-if",
                world,
                f"what-if diff counts {served_counts} != recompute "
                f"{(changed, unchanged, newly_unreachable, newly_reachable)}",
            )
        )
        return violations
    for example in payload["examples"]:
        before, after = expected_paths[example["src"]]
        if (
            example["before"] != (None if before is None else list(before))
            or example["after"] != (None if after is None else list(after))
        ):
            violations.append(
                Violation(
                    "path-serving/what-if",
                    world,
                    f"what-if example for AS{example['src']} disagrees "
                    f"with the from-scratch recompute",
                )
            )
            break
    return violations


# ---------------------------------------------------------------------------
# family 9: time travel — the delta-encoded timeline vs full snapshots
# ---------------------------------------------------------------------------


def _era_link_labels(snapshot) -> Dict[Tuple[int, int], str]:
    """Brute-force (asn_lo, asn_hi) -> oriented label via per-pair lookups.

    Independent of :func:`repro.timeline._asn_link_map` (which reads the
    bulk row tuples): this goes through the snapshot's per-pair
    ``relationship`` / ``provider_of`` query path instead.
    """
    labels: Dict[Tuple[int, int], str] = {}
    asns = snapshot.asns
    for a_id, b_id, _code, _flag in snapshot._links():
        a, b = int(asns[a_id]), int(asns[b_id])
        rel = snapshot.relationship(a, b)
        provider = snapshot.provider_of(a, b)
        if rel is Relationship.P2C and provider is not None:
            label = "p2c" if provider == a else "c2p"
        else:
            label = rel.label
        labels[(a, b)] = label
    return labels


def check_timeline(directory: str, world: str, seed: int) -> List[Violation]:
    """Family 9: historical reads off a delta timeline are exact.

    Builds a three-era evolution series from the world seed, compiles
    per-era full snapshots, delta-encodes them into a timeline,
    round-trips it through the checksummed container, and asserts:

    * every materialized era is bit-identical (``encode_sections``) to
      the independently built full snapshot of that era;
    * every ``?as_of=`` read off the timeline equals the same request
      against a plain single-snapshot server for that era;
    * ``GET /diff/{a}/{b}`` equals a brute-force set comparison of the
      two materialized snapshots, recomputed here from per-pair lookups;
    * ``GET /asns/{asn}/history`` equals the per-era rank entries.
    """
    from repro.serve.handlers import Api
    from repro.serve.store import SnapshotStore
    from repro.timeline import (
        build_timeline,
        era_snapshots,
        load_timeline,
        save_timeline,
    )
    from repro.topology.evolution import (
        Era,
        EvolutionConfig,
        generate_series,
    )
    from repro.topology.generator import GeneratorConfig

    violations: List[Violation] = []
    config = EvolutionConfig(
        base=GeneratorConfig(n_ases=40, seed=seed, clique_size=4),
        eras=[
            Era("e1", new_ases=10, peering_boost=0.02),
            Era("e2", new_ases=12, peering_boost=0.03, clique_entrants=1),
        ],
    )
    pairs = era_snapshots(generate_series(config))
    snapshots = [snapshot for _label, snapshot in pairs]

    os.makedirs(directory, exist_ok=True)
    timeline_file = os.path.join(directory, "qa.timeline")
    save_timeline(build_timeline(pairs), timeline_file)
    timeline = load_timeline(timeline_file, verify=True)

    # storage: eras past the first must actually be delta-encoded
    if [info.kind for info in timeline.eras] != ["full", "delta", "delta"]:
        violations.append(
            Violation(
                "timeline/kinds",
                world,
                f"era kinds {[i.kind for i in timeline.eras]} != "
                "['full', 'delta', 'delta']",
            )
        )

    # bit-identity: each materialized era vs its independent full build
    for index, full in enumerate(snapshots):
        if timeline.snapshot(index).encode_sections() != (
            full.encode_sections()
        ):
            violations.append(
                Violation(
                    "timeline/bit-identity",
                    world,
                    f"era {index}: delta-materialized snapshot is not "
                    "bit-identical to the full build",
                )
            )
            return violations  # downstream comparisons would only echo this

    # as_of serving: every read equals a plain server on that era
    api = Api(SnapshotStore(timeline=timeline))
    for index, full in enumerate(snapshots):
        plain = Api(SnapshotStore(snapshot=full))
        probes = [int(full.asns[0]), int(full.asns[-1])]
        targets = [f"/asns/{probes[0]}", f"/asns/{probes[1]}/cone", "/ranks"]
        for target in targets:
            got = api.handle("GET", target, {"as_of": str(index)})
            want = plain.handle("GET", target, {})
            if got[:2] != want[:2]:
                violations.append(
                    Violation(
                        "timeline/as-of",
                        world,
                        f"GET {target}?as_of={index} differs from the "
                        "single-snapshot server for that era",
                    )
                )
                return violations

    # diff endpoint vs brute-force set comparison
    last = len(snapshots) - 1
    status, payload, _route, _c = api.handle(
        "GET", f"/diff/0/{last}", {}
    )
    snap_a, snap_b = snapshots[0], snapshots[last]
    asns_a, asns_b = set(snap_a.asns), set(snap_b.asns)
    links_a = _era_link_labels(snap_a)
    links_b = _era_link_labels(snap_b)
    flips: Dict[str, int] = {}
    for key in links_a.keys() & links_b.keys():
        if links_a[key] != links_b[key]:
            transition = f"{links_a[key]}->{links_b[key]}"
            flips[transition] = flips.get(transition, 0) + 1
    expected = {
        "new_count": len(asns_b - asns_a),
        "vanished_count": len(asns_a - asns_b),
        "added": len([k for k in links_b if k not in links_a]),
        "removed": len([k for k in links_a if k not in links_b]),
        "flips": flips,
    }
    got = {
        "new_count": payload["ases"]["new_count"],
        "vanished_count": payload["ases"]["vanished_count"],
        "added": payload["links"]["added"],
        "removed": payload["links"]["removed"],
        "flips": payload["links"]["flips"],
    }
    if status != 200 or got != expected:
        violations.append(
            Violation(
                "timeline/diff",
                world,
                f"/diff/0/{last} served {got}, brute force computes "
                f"{expected}",
            )
        )

    # history endpoint vs per-era rank entries
    probe = int(snapshots[0].asns[0])
    status, payload, _route, _c = api.handle(
        "GET", f"/asns/{probe}/history", {}
    )
    ok = status == 200 and len(payload["eras"]) == len(snapshots)
    if ok:
        for index, row in enumerate(payload["eras"]):
            entry = snapshots[index].rank_entry(probe)
            if entry is None:
                ok = row.get("rank") is None
            else:
                ok = (
                    row.get("rank") == entry.rank
                    and row.get("cone_ases") == entry.cone_ases
                    and row.get("transit_degree") == entry.transit_degree
                )
            if not ok:
                break
    if not ok:
        violations.append(
            Violation(
                "timeline/history",
                world,
                f"/asns/{probe}/history disagrees with per-era rank "
                "entries",
            )
        )
    timeline.close()
    return violations


# ---------------------------------------------------------------------------
# family 10: streamed ingest == batch recompute (bit-identity per publish)
# ---------------------------------------------------------------------------


def check_stream(world, label: str, seed: int) -> List[Violation]:
    """Family 10: every streamed publish is bit-identical to batch.

    Seeds a :class:`~repro.stream.corpus.LiveCorpus` with part of the
    world's RIB, then drives a seeded UPDATE series through
    :class:`~repro.stream.ingest.StreamIngestor` — announcements of the
    held-back rows, withdrawals of live keys, relationship-changing
    churn (re-announcing live prefixes with donor paths), a
    withdraw+announce of the same prefix inside one UPDATE, and
    delta-eligible batches (new prefixes over existing paths, truncated
    existing paths) so the incremental apply level is exercised, not
    just its fallback.  After *every* publish, the snapshot's content
    version must equal a from-scratch batch recompute
    (:func:`~repro.stream.corpus.asrank_from_rib_rows`) over the same
    final rows — the streamed-vs-batch contract is exact, not
    approximate.
    """
    import random as _random

    from repro.mrt.reader import RibRecord, UpdateRecord
    from repro.net.prefix import Prefix
    from repro.relationships import canonical_pair
    from repro.stream import StreamIngestor, asrank_from_rib_rows
    from repro.stream.delta import _LATE_STEPS, _partial_vps

    violations: List[Violation] = []
    rows = [
        RibRecord(
            prefix=entry.prefix,
            peer_asn=entry.vp,
            as_path=tuple(entry.path),
            communities=tuple(entry.communities),
        )
        for entry in world.corpus.rib
    ]
    if len(rows) < 8:
        return violations  # not enough routes to stage a stream
    rng = _random.Random(seed * 7919 + 10)
    base_count = max(4, len(rows) * 3 // 5)
    base, held = rows[:base_count], rows[base_count:]
    ixp_asns = world.graph.ixp_asns()
    local_asn = 64700

    def announce(row, prefix=None, path=None):
        return UpdateRecord(
            peer_asn=row.peer_asn,
            local_asn=local_asn,
            as_path=path if path is not None else row.as_path,
            announced=(prefix if prefix is not None else row.prefix,),
            communities=row.communities,
        )

    def withdraw(row):
        return UpdateRecord(
            peer_asn=row.peer_asn,
            local_asn=local_asn,
            as_path=(),
            announced=(),
            communities=(),
            withdrawn=(row.prefix,),
        )

    batches: List[List[UpdateRecord]] = []
    half = len(held) // 2
    batches.append([announce(row) for row in held[:half]])
    # mixed batch: the rest of the held rows plus withdrawals of live keys
    mixed = [announce(row) for row in held[half:]]
    mixed.extend(withdraw(row) for row in rng.sample(base, min(3, len(base))))
    batches.append(mixed)
    # relationship-changing churn: live prefixes re-announced with donor
    # paths from other vantage points
    donors = rng.sample(rows, min(4, len(rows)))
    targets = rng.sample(base, min(4, len(base)))
    batches.append(
        [
            announce(target, path=donor.as_path)
            for target, donor in zip(targets, donors)
        ]
    )
    # RFC 4271 ordering: withdraw and announce the same prefix in one
    # UPDATE — the prefix must survive with the new path
    flip = rng.choice(rows)
    batches.append(
        [
            UpdateRecord(
                peer_asn=flip.peer_asn,
                local_asn=local_asn,
                as_path=flip.as_path,
                announced=(flip.prefix,),
                communities=flip.communities,
                withdrawn=(flip.prefix,),
            )
        ]
    )

    ingestor = StreamIngestor(
        ixp_asns=ixp_asns, base_rows=base, full_threshold=0.95
    )

    def checked_publish(stage: str) -> None:
        snapshot = ingestor.publish()
        expected = asrank_from_rib_rows(
            ingestor.corpus.rows(), ixp_asns=ixp_asns
        ).snapshot(source=ingestor.source)
        if snapshot.version != expected.version:
            violations.append(
                Violation(
                    "stream/bit-identity",
                    label,
                    f"{stage} publish "
                    f"({ingestor.stats.last_publish_mode}) version "
                    f"{snapshot.version} != batch {expected.version}",
                )
            )

    checked_publish("seed")
    for index, batch in enumerate(batches):
        ingestor.apply_batch(batch)
        checked_publish(f"batch-{index}")

    # delta-eligible stages: a fresh prefix over an existing (vp, path)
    # row, then truncated existing paths whose links all carry early-
    # step labels (the crafted shape the incremental apply accepts)
    live = ingestor.live
    if live is not None and live.result._step:
        donor = rng.choice(rows)
        ingestor.apply_batch(
            [announce(donor, prefix=Prefix.parse("198.51.100.0/24"))]
        )
        checked_publish("prefix-only")

        result = live.result
        filtered = live.filtered
        origins = {path[-1] for path in filtered.paths}
        partial = _partial_vps(
            filtered, ingestor.config.partial_vp_coverage
        )
        existing = set(filtered.paths)
        truncated: List[Tuple[int, ...]] = []
        for path in filtered.paths:
            for cut in range(3, len(path)):
                candidate = path[:cut]
                if candidate in existing:
                    continue
                steps = [
                    result._step.get(canonical_pair(a, b))
                    for a, b in zip(candidate, candidate[1:])
                ]
                if (
                    candidate[-1] in origins
                    and candidate[0] not in partial
                    and all(
                        s is not None and s not in _LATE_STEPS
                        for s in steps
                    )
                ):
                    truncated.append(candidate)
                    existing.add(candidate)
            if len(truncated) >= 3:
                break
        if truncated:
            ingestor.apply_batch(
                [
                    UpdateRecord(
                        peer_asn=candidate[0],
                        local_asn=local_asn,
                        as_path=candidate,
                        announced=(
                            Prefix.parse(f"203.0.{113 + index}.0/24"),
                        ),
                        communities=(),
                    )
                    for index, candidate in enumerate(truncated)
                ]
            )
            checked_publish("truncated-paths")

    # a duplicate re-announcement must be detected as a noop publish
    ingestor.apply_batch([announce(rng.choice(ingestor.corpus.rows()))])
    before = ingestor.stats.last_publish_version
    snapshot = ingestor.publish()
    if snapshot.version != before:
        violations.append(
            Violation(
                "stream/noop",
                label,
                "re-announcing an identical route changed the version "
                f"({before} -> {snapshot.version})",
            )
        )
    return violations
