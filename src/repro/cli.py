"""Command-line interface: the full pipeline from a shell.

Subcommands mirror the library stages::

    repro-asrank simulate --scenario medium --out-dir ./run
    repro-asrank infer    --paths ./run/paths.txt --as-rel ./run/as-rel.txt
    repro-asrank cones    --paths ./run/paths.txt --as-rel ./run/as-rel.txt \
                          --ppdc ./run/ppdc-ases.txt
    repro-asrank validate --scenario medium
    repro-asrank rank     --scenario medium --top 15
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.timeseries import flattening_series, series_metrics
from repro.core.cone import ConeDefinition, CustomerCones
from repro.core.inference import infer_relationships
from repro.core.paths import PathSet
from repro.core.rank import rank_ases
from repro.datasets.serialization import (
    DatasetFormatError,
    save_as_rel,
    save_paths,
    save_ppdc_ases,
    load_paths,
)
from repro.mrt.constants import MrtFormatError
from repro.mrt.updates import write_update_dump
from repro.mrt.writer import write_rib_dump
from repro.topology.evolution import generate_series
from repro.relationships import Relationship
from repro.scenarios import SCENARIOS, get_scenario
from repro.validation import (
    communities_corpus,
    direct_report_corpus,
    routing_policy_corpus,
    rpsl_corpus,
    validate,
)


def _add_scenario_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario",
        default="medium",
        choices=sorted(SCENARIOS),
        help="named workload to run (default: medium)",
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    graph, corpus = scenario.collect()
    os.makedirs(args.out_dir, exist_ok=True)
    paths_file = os.path.join(args.out_dir, "paths.txt")
    count = save_paths(
        paths_file,
        corpus.paths,
        comments=[f"scenario: {scenario.name}", f"vps: {len(corpus.vps)}"],
    )
    print(f"wrote {count} paths to {paths_file}")
    if args.mrt:
        mrt_file = os.path.join(args.out_dir, "rib.mrt")
        records = write_rib_dump(mrt_file, corpus.rib)
        print(f"wrote {records} RIB records to {mrt_file}")
    if args.updates:
        updates_file = os.path.join(args.out_dir, "updates.mrt")
        messages = write_update_dump(updates_file, corpus.rib)
        print(f"wrote {messages} UPDATE messages to {updates_file}")
    return 0


def _cmd_evolve(args: argparse.Namespace) -> int:
    from repro.scenarios import evolution_scenario

    config = evolution_scenario(eras=args.eras)
    snapshots = generate_series(config)
    metrics = series_metrics(snapshots)
    print(f"{'era':<8}{'ases':>6}{'links':>7}{'paths':>8}"
          f"{'clique':>8}{'recall':>8}")
    for m in metrics:
        print(
            f"{m.label:<8}{m.n_ases:>6}{m.n_links:>7}{m.n_paths:>8}"
            f"{len(m.inferred_clique):>8}{m.clique_recall:>8.0%}"
        )
    tracked = flattening_series(metrics)
    print("\ncone share of the largest providers per era:")
    for asn, shares in sorted(tracked.items(), key=lambda kv: -kv[1][0])[:5]:
        print(f"  AS{asn:<7}" + " ".join(f"{s:>6.1%}" for s in shares))
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    raw = load_paths(args.paths)
    paths = PathSet.sanitize(raw)
    result = infer_relationships(paths)
    for name, value in paths.stats.as_rows():
        print(f"  {name:<26}{value}")
    counts = result.counts_by_relationship()
    print(
        f"inferred {len(result)} links: "
        f"{counts.get(Relationship.P2C, 0)} c2p, "
        f"{counts.get(Relationship.P2P, 0)} p2p; "
        f"clique = {result.clique.members}"
    )
    if args.as_rel:
        written = save_as_rel(args.as_rel, result, comments=["inferred by repro-asrank"])
        print(f"wrote {written} relationships to {args.as_rel}")
    return 0


def _cmd_cones(args: argparse.Namespace) -> int:
    raw = load_paths(args.paths)
    paths = PathSet.sanitize(raw)
    result = infer_relationships(paths)
    definition = ConeDefinition(args.definition)
    cones = CustomerCones.compute(result, definition)
    print(f"cone definition: {definition.value}")
    for asn, size in cones.top(args.top):
        print(f"  AS{asn:<8} cone {size} ASes")
    if args.ppdc:
        written = save_ppdc_ases(args.ppdc, cones.cones)
        print(f"wrote {written} cones to {args.ppdc}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    graph, corpus, paths, result = scenario.run()
    sources = (
        direct_report_corpus(graph)
        .merge(communities_corpus(corpus.rib, graph.ixp_asns()))
        .merge(rpsl_corpus(graph))
        .merge(routing_policy_corpus(graph))
    )
    report = validate(result, sources, step_lookup=result.step_of)
    print(f"scenario {scenario.name}: {len(result)} inferences, "
          f"{report.validated} validated ({report.coverage:.1%} coverage)")
    for rel in (Relationship.P2C, Relationship.P2P):
        metrics = report.by_class.get(rel)
        if metrics:
            print(f"  {rel.label} PPV: {metrics.ppv:.4f} ({metrics.total} judged)")
    print("  by source:", {s: m.total for s, m in sorted(report.by_source.items())})
    return 0


def _cmd_qa(args: argparse.Namespace) -> int:
    from repro.qa import QaConfig, replay_paths, run_qa

    if args.replay:
        report = replay_paths(args.replay, log=print)
    else:
        config = QaConfig(
            seeds=args.seeds,
            base_seed=args.base_seed,
            repro_dir=args.repro_dir,
            shrink=not args.no_shrink,
        )
        report = run_qa(config, log=print)
    return 0 if report.ok else 1


def _cmd_rank(args: argparse.Namespace) -> int:
    if args.paths:
        raw = load_paths(args.paths)
        paths = PathSet.sanitize(raw)
        result = infer_relationships(paths)
        prefixes = None
    else:
        scenario = get_scenario(args.scenario)
        graph, corpus, paths, result = scenario.run()
        prefixes = {asys.asn: asys.prefixes for asys in graph.ases()}
    cones = CustomerCones.compute(
        result, ConeDefinition.PROVIDER_PEER_OBSERVED, prefixes_by_asn=prefixes
    )
    print(f"{'rank':>4} {'asn':>7} {'cone':>6} {'pfx':>6} {'addrs':>12} "
          f"{'transit':>8} {'cust':>5} {'peer':>5} {'prov':>5}")
    for entry in rank_ases(result, cones, limit=args.top):
        print(
            f"{entry.rank:>4} {entry.asn:>7} {entry.cone_ases:>6} "
            f"{entry.cone_prefixes:>6} {entry.cone_addresses:>12} "
            f"{entry.transit_degree:>8} {entry.num_customers:>5} "
            f"{entry.num_peers:>5} {entry.num_providers:>5}"
        )
    return 0


def _build_snapshot(args: argparse.Namespace):
    """Compile a Snapshot from whichever input the flags select."""
    from repro.asrank import ASRank
    from repro.serve.snapshot import Snapshot

    if args.as_rel:
        return Snapshot.from_files(args.as_rel, ppdc_path=args.ppdc)
    if args.paths:
        return ASRank.from_path_file(args.paths).snapshot(
            source=f"paths:{args.paths}"
        )
    scenario = get_scenario(args.scenario)
    graph, corpus, paths, result = scenario.run()
    facade = ASRank(
        paths,
        prefixes_by_asn={a.asn: a.prefixes for a in graph.ases()},
    )
    facade._result = result
    return facade.snapshot(source=f"scenario:{scenario.name}")


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.serve.store import load_snapshot, save_snapshot

    if args.snapshot_command == "build":
        snapshot = _build_snapshot(args)
        version = save_snapshot(snapshot, args.out)
        size = os.path.getsize(args.out)
        print(
            f"wrote snapshot {version} to {args.out}: "
            f"{len(snapshot)} ASes, {snapshot.stats['n_links']} links, "
            f"{size} bytes"
        )
        return 0
    # info
    from repro.serve.store import read_snapshot_header

    snapshot = load_snapshot(args.file, lazy=True)
    header, payload_offset = read_snapshot_header(args.file)
    alignment = int(header.get("alignment", 1))
    print(f"snapshot {snapshot.version} ({args.file})")
    print(f"  source       {snapshot.meta.get('source')}")
    print(f"  definitions  {', '.join(snapshot.meta['definitions'])}")
    print(f"  ases         {snapshot.stats.get('n_ases')}")
    print(f"  links        {snapshot.stats.get('n_links')}")
    clique = snapshot.meta.get("clique") or []
    print(f"  clique       {clique}")
    print(f"  format       minor {header.get('minor', 0)}, "
          f"{alignment}-byte section alignment, "
          f"payload at {payload_offset}")
    print(f"  {'section':<30}{'offset':>10}{'bytes':>10}  aligned")
    for name, entry in sorted(header["sections"].items()):
        offset = int(entry["offset"])
        aligned = "yes" if offset % max(alignment, 1) == 0 else "no"
        print(f"  {name:<30}{offset:>10}{int(entry['length']):>10}  "
              f"{aligned}")
    snapshot.close()
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.scenarios import evolution_scenario
    from repro.timeline import (
        build_timeline,
        era_snapshots,
        load_timeline,
        read_timeline_header,
        save_timeline,
    )

    if args.timeline_command == "build":
        config = evolution_scenario(eras=args.eras, seed=args.seed)
        series = generate_series(config)
        snapshots = era_snapshots(series)
        timeline = build_timeline(snapshots, start_year=args.start_year)
        version = save_timeline(timeline, args.out)
        size = os.path.getsize(args.out)
        print(
            f"wrote timeline {version} to {args.out}: "
            f"{len(timeline)} eras, {size} bytes"
        )
        for info in timeline.eras:
            print(
                f"  era {info.index} {info.label:<8}{info.date}  "
                f"{info.kind:<6}{info.n_ases:>6} ASes "
                f"{info.n_links:>7} links  "
                f"{timeline.era_bytes(info.index):>9} bytes  "
                f"snapshot {info.snapshot_version}"
            )
        return 0
    # info
    timeline = load_timeline(args.file)
    header, payload_offset = read_timeline_header(args.file)
    full = timeline.era_bytes(0)
    print(f"timeline {timeline.version} ({args.file})")
    print(f"  eras         {len(timeline)}")
    print(f"  payload at   {payload_offset}")
    print(f"  {'era':<5}{'label':<10}{'date':<12}{'kind':<7}"
          f"{'ases':>7}{'links':>8}{'bytes':>10}  {'vs era0':>8}  "
          f"snapshot")
    for info in timeline.eras:
        era_bytes = timeline.era_bytes(info.index)
        ratio = era_bytes / full if full else 0.0
        print(
            f"  {info.index:<5}{info.label:<10}{info.date:<12}"
            f"{info.kind:<7}{info.n_ases:>7}{info.n_links:>8}"
            f"{era_bytes:>10}  {ratio:>7.1%}  {info.snapshot_version}"
        )
    timeline.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.server import SnapshotServer
    from repro.serve.store import SnapshotStore, save_snapshot

    mode = args.mode or ("lazy" if args.lazy else None)
    if args.workers > 1:
        return _serve_fleet(args, mode)
    if args.snapshot:
        store = SnapshotStore(path=args.snapshot, mode=mode)
    else:
        snapshot = _build_snapshot(args)
        path = None
        if args.out:
            save_snapshot(snapshot, args.out)
            path = args.out
        store = SnapshotStore(snapshot=snapshot, path=path)
    server = SnapshotServer(
        store,
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        allow_admin=not args.no_admin,
        install_sighup=True,
        compute_workers=args.compute_workers,
    )
    try:
        asyncio.run(server.run())
    except KeyboardInterrupt:
        pass
    return 0


def _serve_fleet(args: argparse.Namespace, mode: Optional[str]) -> int:
    """``serve --workers N``: the pre-fork SO_REUSEPORT fleet."""
    import signal as _signal

    from repro.serve.store import read_payload_header, save_snapshot
    from repro.serve.workers import FleetError, WorkerFleet

    path = args.snapshot
    if not path:
        # the fleet maps one file; a built snapshot must land on disk
        path = args.out
        if not path:
            print(
                "error: --workers needs a snapshot file: pass --snapshot, "
                "or --out to save the built snapshot",
                file=sys.stderr,
            )
            return 2
        snapshot = _build_snapshot(args)
        save_snapshot(snapshot, path)
    else:
        # fail before forking on a missing/garbled file (main() turns
        # the raised error into the one-line exit-2 convention); the
        # sniffing header read accepts snapshot and timeline files
        read_payload_header(path)
    fleet = WorkerFleet(
        path,
        workers=args.workers,
        host=args.host,
        port=args.port,
        mode=mode or "mmap",
        cache_size=args.cache_size,
        allow_admin=not args.no_admin,
        compute_workers=args.compute_workers,
    )
    try:
        host, port = fleet.start()
    except FleetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if hasattr(_signal, "SIGHUP"):
        _signal.signal(
            _signal.SIGHUP, lambda *_: fleet.request_reload()
        )
    print(
        f"serving snapshot {path} on http://{host}:{port} "
        f"with {args.workers} workers "
        f"({'SO_REUSEPORT' if fleet.reuse_port else 'shared socket'}, "
        f"mode={fleet.mode}); SIGHUP reloads the fleet"
    )
    try:
        while True:
            _signal.pause()
    except KeyboardInterrupt:
        pass
    finally:
        fleet.stop()
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    """``stream``: replay an UPDATE dump through the live-ingest layer."""
    import json

    if args.status:
        from urllib.request import urlopen

        url = args.status.rstrip("/") + "/stream"
        with urlopen(url, timeout=10) as response:
            print(json.dumps(json.load(response), indent=2, sort_keys=True))
        return 0

    if not args.updates:
        print("error: an UPDATE dump is required (or --status URL)",
              file=sys.stderr)
        return 2

    from repro.mrt.reader import iter_rib_dump
    from repro.mrt.updates import follow_update_batches, iter_update_batches
    from repro.stream import StreamIngestor

    base_rows = None
    if args.base:
        base_rows = list(iter_rib_dump(args.base))
    ingestor = StreamIngestor(
        base_rows=base_rows, full_threshold=args.full_threshold
    )

    server = None
    if args.serve:
        from repro.serve.server import ServerThread
        from repro.serve.store import SnapshotStore
        from repro.stream import StorePublisher

        snapshot = ingestor.publish()  # serve the seeded table from t=0
        store = SnapshotStore(snapshot=snapshot)
        ingestor.publisher = StorePublisher(store)
        server = ServerThread(
            store, host=args.host, port=args.port,
            ingest_status=ingestor.status,
        )
        host, port = server.start()
        print(f"serving live ingest on http://{host}:{port} "
              f"(version {snapshot.version})")

    if args.follow:
        batches = follow_update_batches(
            args.updates, batch_size=args.batch_size
        )
    else:
        batches = iter_update_batches(
            args.updates, batch_size=args.batch_size
        )
    try:
        ingestor.run(batches, publish_every=args.publish_every)
    except KeyboardInterrupt:
        pass
    status = ingestor.status()
    print(json.dumps(status, indent=2, sort_keys=True))
    if server is not None:
        print("stream drained; still serving (ctrl-c to stop)")
        try:
            import time as _time

            while True:
                _time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
    return 0


def _cmd_paths(args: argparse.Namespace) -> int:
    """One path / anycast / what-if query against a snapshot, as JSON."""
    import json

    from repro.serve.handlers import Api
    from repro.serve.store import SnapshotStore, load_snapshot

    if args.snapshot:
        snapshot = load_snapshot(args.snapshot, lazy=True)
        store = SnapshotStore(snapshot=snapshot, path=args.snapshot)
    else:
        store = SnapshotStore(snapshot=_build_snapshot(args))
    api = Api(store, allow_admin=False)

    if args.what_if:
        with open(args.what_if) as handle:
            ops = json.load(handle)
        body: dict = {"dst": args.dst, "ops": ops}
        if args.sample:
            body["sample"] = args.sample
        status, payload, _route, _cacheable = api.handle(
            "POST", "/what-if", {}, json.dumps(body).encode()
        )
    else:
        query = {}
        if args.origins:
            query["origins"] = args.origins
        status, payload, _route, _cacheable = api.handle(
            "GET", f"/paths/{args.src}/{args.dst}", query
        )
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0 if status == 200 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-asrank",
        description="AS relationship inference, customer cones and validation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="generate topology + collect BGP paths")
    _add_scenario_arg(simulate)
    simulate.add_argument("--out-dir", default=".", help="output directory")
    simulate.add_argument("--mrt", action="store_true", help="also write an MRT RIB dump")
    simulate.add_argument("--updates", action="store_true",
                          help="also write a BGP4MP update-stream dump")
    simulate.set_defaults(func=_cmd_simulate)

    evolve = sub.add_parser(
        "evolve", help="run the longitudinal era series and print the trends"
    )
    evolve.add_argument("--eras", type=int, default=4)
    evolve.set_defaults(func=_cmd_evolve)

    infer = sub.add_parser("infer", help="infer relationships from a path file")
    infer.add_argument("--paths", required=True, help="path file (one AS path per line)")
    infer.add_argument("--as-rel", help="write inferred relationships here")
    infer.set_defaults(func=_cmd_infer)

    cones = sub.add_parser("cones", help="compute customer cones from a path file")
    cones.add_argument("--paths", required=True)
    cones.add_argument(
        "--definition",
        default=ConeDefinition.PROVIDER_PEER_OBSERVED.value,
        choices=[d.value for d in ConeDefinition],
    )
    cones.add_argument("--top", type=int, default=15)
    cones.add_argument("--ppdc", help="write ppdc-ases file here")
    cones.set_defaults(func=_cmd_cones)

    val = sub.add_parser("validate", help="run a scenario and score PPV")
    _add_scenario_arg(val)
    val.set_defaults(func=_cmd_validate)

    rank = sub.add_parser("rank", help="run a scenario and print the AS ranking")
    _add_scenario_arg(rank)
    rank.add_argument("--paths", help="rank from a path file instead of a scenario")
    rank.add_argument("--top", type=int, default=15)
    rank.set_defaults(func=_cmd_rank)

    snapshot = sub.add_parser(
        "snapshot", help="build/inspect query-service snapshots (repro.serve)"
    )
    snap_sub = snapshot.add_subparsers(dest="snapshot_command", required=True)
    snap_build = snap_sub.add_parser(
        "build", help="compile a snapshot file from a scenario or input files"
    )
    _add_scenario_arg(snap_build)
    snap_build.add_argument("--paths", help="build from a path file")
    snap_build.add_argument("--as-rel", help="build from a CAIDA as-rel file")
    snap_build.add_argument("--ppdc", help="ppdc-ases file (with --as-rel)")
    snap_build.add_argument("--out", required=True, help="snapshot file to write")
    snap_build.set_defaults(func=_cmd_snapshot)
    snap_info = snap_sub.add_parser("info", help="print a snapshot's metadata")
    snap_info.add_argument("file", help="snapshot file")
    snap_info.set_defaults(func=_cmd_snapshot)

    timeline = sub.add_parser(
        "timeline",
        help="build/inspect delta-encoded era timelines (repro.timeline)",
    )
    timeline_sub = timeline.add_subparsers(
        dest="timeline_command", required=True
    )
    timeline_build = timeline_sub.add_parser(
        "build",
        help="run the longitudinal era series and pack it into one "
             "delta-encoded timeline file",
    )
    timeline_build.add_argument("--eras", type=int, default=4,
                                help="eras after the base (default: 4)")
    timeline_build.add_argument("--seed", type=int, default=7,
                                help="series seed (default: 7)")
    timeline_build.add_argument(
        "--start-year", type=int, default=1998,
        help="year of era 0; each era is one year later (default: 1998)",
    )
    timeline_build.add_argument("--out", required=True,
                                help="timeline file to write")
    timeline_build.set_defaults(func=_cmd_timeline)
    timeline_info = timeline_sub.add_parser(
        "info", help="print a timeline's era and section table"
    )
    timeline_info.add_argument("file", help="timeline file")
    timeline_info.set_defaults(func=_cmd_timeline)

    serve = sub.add_parser(
        "serve", help="serve a snapshot over the asyncio HTTP/JSON API"
    )
    _add_scenario_arg(serve)
    serve.add_argument("--snapshot",
                       help="snapshot or timeline file to serve "
                            "(sniffed by magic)")
    serve.add_argument("--paths", help="build + serve from a path file")
    serve.add_argument("--as-rel", help="build + serve from an as-rel file")
    serve.add_argument("--ppdc", help="ppdc-ases file (with --as-rel)")
    serve.add_argument("--out", help="also write the built snapshot here")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--cache-size", type=int, default=4096,
                       help="response-cache entries (default: 4096)")
    serve.add_argument("--lazy", action="store_true",
                       help="load snapshot sections on demand "
                            "(shorthand for --mode lazy)")
    serve.add_argument("--mode", choices=["eager", "lazy", "mmap"],
                       help="snapshot load mode: eager copies and "
                            "verifies everything up front, lazy reads "
                            "sections on demand, mmap serves zero-copy "
                            "views of the mapped file (default: eager; "
                            "fleets default to mmap)")
    serve.add_argument("--workers", type=int, default=1,
                       help="pre-fork worker processes sharing the port "
                            "via SO_REUSEPORT and the snapshot via mmap; "
                            "1 keeps the single-process server "
                            "(default: 1)")
    serve.add_argument("--no-admin", action="store_true",
                       help="disable POST /admin/reload")
    serve.add_argument("--compute-workers", type=int, default=2,
                       help="path/what-if compute pool size; 0 runs "
                            "them inline on the event loop (default: 2)")
    serve.set_defaults(func=_cmd_serve)

    paths_cmd = sub.add_parser(
        "paths",
        help="predict a policy path / anycast winner / what-if diff "
             "from a snapshot",
    )
    _add_scenario_arg(paths_cmd)
    paths_cmd.add_argument("src", type=int, help="source ASN")
    paths_cmd.add_argument(
        "dst", type=int,
        help="destination ASN (the what-if origin in --what-if mode)",
    )
    paths_cmd.add_argument("--snapshot", help="snapshot file to query")
    paths_cmd.add_argument("--paths", help="build from a path file")
    paths_cmd.add_argument("--as-rel", help="build from an as-rel file")
    paths_cmd.add_argument("--ppdc", help="ppdc-ases file (with --as-rel)")
    paths_cmd.add_argument(
        "--origins",
        help="comma-separated anycast origin set announced with dst",
    )
    paths_cmd.add_argument(
        "--what-if", metavar="OPS_JSON",
        help="JSON file with a scenario op list; prints the diff "
             "against the baseline instead of a single path",
    )
    paths_cmd.add_argument(
        "--sample", type=int,
        help="diff over an evenly-spaced sample of sources (what-if)",
    )
    paths_cmd.set_defaults(func=_cmd_paths)

    stream = sub.add_parser(
        "stream",
        help="live-ingest an MRT UPDATE dump, publishing snapshots "
             "incrementally (optionally into a live server)",
    )
    stream.add_argument("updates", nargs="?",
                        help="BGP4MP UPDATE dump to replay")
    stream.add_argument("--base",
                        help="MRT RIB dump seeding the live table")
    stream.add_argument("--batch-size", type=int, default=256,
                        help="UPDATE records applied per batch "
                             "(default: 256)")
    stream.add_argument("--publish-every", type=int, default=1,
                        help="publish a snapshot every N batches "
                             "(default: 1)")
    stream.add_argument("--full-threshold", type=float, default=0.25,
                        help="dirty-table fraction above which a publish "
                             "skips the delta checks and recomputes in "
                             "full (default: 0.25)")
    stream.add_argument("--serve", action="store_true",
                        help="serve the stream over HTTP while ingesting "
                             "(hot-publishing each snapshot); keeps "
                             "serving after the dump is drained")
    stream.add_argument("--host", default="127.0.0.1")
    stream.add_argument("--port", type=int, default=8080)
    stream.add_argument("--follow", action="store_true",
                        help="tail the dump for appended records instead "
                             "of stopping at EOF")
    stream.add_argument("--status", metavar="URL",
                        help="print a running stream server's /stream "
                             "status as JSON and exit (no ingest)")
    stream.set_defaults(func=_cmd_stream)

    qa = sub.add_parser(
        "qa",
        help="run the seeded differential-invariant sweep (repro.qa)",
    )
    qa.add_argument("--seeds", type=int, default=20,
                    help="number of randomized worlds to sweep (default: 20)")
    qa.add_argument("--base-seed", type=int, default=0,
                    help="first seed of the sweep (default: 0)")
    qa.add_argument("--repro-dir", default="benchmarks/repros",
                    help="where shrunken failure corpora are written")
    qa.add_argument("--no-shrink", action="store_true",
                    help="save failing corpora without delta-debugging them")
    qa.add_argument("--replay", metavar="PATHS_FILE",
                    help="re-run the corpus invariants on a saved repro")
    qa.set_defaults(func=_cmd_qa)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point.  Data and I/O errors exit 2 with a one-line message
    instead of a traceback; invariant violations from ``qa`` exit 1.

    ``SnapshotFormatError`` (corrupted/truncated snapshot files) is a
    ``DatasetFormatError`` subclass, so ``serve``/``snapshot`` follow
    the same convention.  ``UnicodeDecodeError`` covers binary garbage
    handed to the text loaders (``infer``/``cones``/``rank --paths``).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (DatasetFormatError, MrtFormatError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except UnicodeDecodeError as exc:
        print(f"error: input is not a text file ({exc.reason})",
              file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
