"""RPSL (RFC 2622) aut-num policies as a validation source.

Networks in some registries (RIPE especially) publish their routing
policy as ``aut-num`` objects.  The conventional encodings leak the
business relationship:

* ``import: from AS-x accept ANY`` — x sends us everything: x is our
  **provider**;
* ``export: to AS-x announce AS-SELF`` (or a customer as-set) combined
  with accepting ANY — classic customer-side policy;
* ``export: to AS-x announce ANY`` — we send x everything: x is our
  **customer**;
* symmetric ``accept <their set>`` / ``announce <our set>`` — **peer**.

This module generates aut-num text for a configurable subset of a
ground-truth graph (with a registry-region bias) and a parser that
recovers relationship assertions from the text, mirroring the paper's
IRR mining.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.relationships import Relationship
from repro.topology.model import ASGraph, ASType
from repro.validation.ground_truth import ValidationCorpus, ValidationRecord


@dataclass
class RpslObject:
    """One parsed aut-num object."""

    asn: int
    imports: List[Tuple[int, str]] = field(default_factory=list)  # (peer, filter)
    exports: List[Tuple[int, str]] = field(default_factory=list)  # (peer, filter)

    def as_text(self) -> str:
        lines = [f"aut-num:        AS{self.asn}"]
        lines.append(f"as-name:        SYNTH-AS{self.asn}")
        for peer, policy_filter in self.imports:
            lines.append(f"import:         from AS{peer} accept {policy_filter}")
        for peer, policy_filter in self.exports:
            lines.append(f"export:         to AS{peer} announce {policy_filter}")
        lines.append("source:         SYNTHETIC")
        return "\n".join(lines) + "\n"


def _self_set(asn: int) -> str:
    return f"AS{asn}"


def _customer_set(asn: int) -> str:
    return f"AS{asn}:AS-CUSTOMERS"


def generate_rpsl(
    graph: ASGraph,
    registration_rate: float = 0.25,
    seed: int = 17,
    staleness: float = 0.0,
) -> List[RpslObject]:
    """Author aut-num objects for a random subset of the graph's ASes.

    Each registered AS writes policy lines for every neighbor using the
    conventional encodings, exactly as a diligent RIPE member would.

    ``staleness`` models the IRR's well-known data-quality problem (the
    paper discusses it): with this probability per neighbor, the
    registered policy describes a *previous* relationship — a current
    peer still registered as a provider, a current provider registered
    as a peer — because nobody updated the object after the business
    changed.
    """
    rng = random.Random(seed)
    objects: List[RpslObject] = []
    for asys in graph.ases():
        if asys.type is ASType.IXP_RS:
            continue
        if rng.random() >= registration_rate:
            continue
        asn = asys.asn
        obj = RpslObject(asn=asn)

        def write_provider_lines(neighbor: int) -> None:
            obj.imports.append((neighbor, "ANY"))
            obj.exports.append((neighbor, _customer_set(asn)))

        def write_peer_lines(neighbor: int) -> None:
            obj.imports.append((neighbor, _customer_set(neighbor)))
            obj.exports.append((neighbor, _customer_set(asn)))

        def write_customer_lines(neighbor: int) -> None:
            obj.imports.append((neighbor, _customer_set(neighbor)))
            obj.exports.append((neighbor, "ANY"))

        for provider in sorted(graph.providers[asn]):
            if staleness and rng.random() < staleness:
                write_peer_lines(provider)  # outdated: used to be a peer
            else:
                write_provider_lines(provider)
        for peer in sorted(graph.peers[asn]):
            if staleness and rng.random() < staleness:
                write_provider_lines(peer)  # outdated: used to buy transit
            else:
                write_peer_lines(peer)
        for customer in sorted(graph.customers[asn]):
            if staleness and rng.random() < staleness:
                write_peer_lines(customer)
            else:
                write_customer_lines(customer)
        objects.append(obj)
    return objects


def parse_rpsl(text: str) -> List[RpslObject]:
    """Parse one or more aut-num objects from RPSL text.

    Objects are separated by blank lines or new ``aut-num:`` attributes;
    unknown attributes are ignored, per RPSL's extensible design.
    """
    objects: List[RpslObject] = []
    current: Optional[RpslObject] = None
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith(("%", "#")):
            continue
        if ":" not in line:
            continue
        attribute, _, value = line.partition(":")
        attribute = attribute.strip().lower()
        value = value.strip()
        if attribute == "aut-num":
            asn = _parse_asn(value)
            current = RpslObject(asn=asn) if asn is not None else None
            if current is not None:
                objects.append(current)
        elif current is None:
            continue
        elif attribute == "import":
            parsed = _parse_policy(value, "from", "accept")
            if parsed is not None:
                current.imports.append(parsed)
        elif attribute == "export":
            parsed = _parse_policy(value, "to", "announce")
            if parsed is not None:
                current.exports.append(parsed)
    return objects


def _parse_asn(token: str) -> Optional[int]:
    token = token.strip().upper()
    if token.startswith("AS") and token[2:].isdigit():
        return int(token[2:])
    return None


def _parse_policy(
    value: str, peer_keyword: str, filter_keyword: str
) -> Optional[Tuple[int, str]]:
    """Extract ``(peer_asn, filter)`` from an import/export value."""
    tokens = value.split()
    lowered = [t.lower() for t in tokens]
    try:
        peer_idx = lowered.index(peer_keyword) + 1
        filter_idx = lowered.index(filter_keyword) + 1
    except ValueError:
        return None
    if peer_idx >= len(tokens) or filter_idx >= len(tokens):
        return None
    peer = _parse_asn(tokens[peer_idx])
    if peer is None:
        return None
    return peer, " ".join(tokens[filter_idx:])


def relationships_from_objects(
    objects: Iterable[RpslObject],
) -> Iterable[ValidationRecord]:
    """Recover relationship assertions from parsed aut-num objects.

    The decision table mirrors the paper's IRR mining: ``accept ANY``
    from a neighbor marks it as provider, ``announce ANY`` to a
    neighbor marks it as customer, and symmetric customer-set exchange
    marks a peer.
    """
    for obj in objects:
        import_filters: Dict[int, str] = {p: f for p, f in obj.imports}
        export_filters: Dict[int, str] = {p: f for p, f in obj.exports}
        for neighbor in sorted(set(import_filters) | set(export_filters)):
            accepts = import_filters.get(neighbor, "").upper()
            announces = export_filters.get(neighbor, "").upper()
            if accepts == "ANY" and announces != "ANY":
                yield ValidationRecord(
                    a=obj.asn, b=neighbor, relationship=Relationship.P2C,
                    provider=neighbor, source="rpsl",
                )
            elif announces == "ANY" and accepts != "ANY":
                yield ValidationRecord(
                    a=obj.asn, b=neighbor, relationship=Relationship.P2C,
                    provider=obj.asn, source="rpsl",
                )
            elif accepts and announces:
                # both sides exchange bounded sets: peers (ANY/ANY — a
                # mutual-transit oddity — is skipped as unparseable)
                if accepts != "ANY" and announces != "ANY":
                    yield ValidationRecord(
                        a=obj.asn, b=neighbor, relationship=Relationship.P2P,
                        provider=None, source="rpsl",
                    )


def rpsl_corpus(
    graph: ASGraph,
    registration_rate: float = 0.25,
    seed: int = 17,
    staleness: float = 0.0,
) -> ValidationCorpus:
    """Generate, serialize, re-parse and mine RPSL for ``graph``.

    Round-trips through the textual form on purpose: the parser is part
    of the system under test.
    """
    objects = generate_rpsl(graph, registration_rate, seed, staleness)
    text = "\n".join(obj.as_text() for obj in objects)
    parsed = parse_rpsl(text)
    corpus = ValidationCorpus()
    for record in relationships_from_objects(parsed):
        corpus.add(record)
    return corpus
