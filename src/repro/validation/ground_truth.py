"""Validation records and the directly-reported corpus.

A :class:`ValidationRecord` states what one source believes about one
link; a :class:`ValidationCorpus` is a deduplicated, source-attributed
collection.  The *directly reported* corpus models the paper's operator
survey: a biased sample of the ground truth — operators of larger
networks respond more often, and they report the links of their own AS.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.relationships import Relationship, canonical_pair
from repro.topology.model import ASGraph, ASType


@dataclass(frozen=True)
class ValidationRecord:
    """One source's belief about one link.

    ``provider`` is set for P2C records and names which endpoint
    provides; it is None for P2P/S2S.
    """

    a: int
    b: int
    relationship: Relationship
    provider: Optional[int]
    source: str

    @property
    def pair(self) -> Tuple[int, int]:
        return canonical_pair(self.a, self.b)


class ValidationCorpus:
    """Deduplicated validation data with per-source attribution.

    When two sources disagree about a link, both records are kept and
    the link is flagged conflicted; conflicted links are excluded from
    PPV scoring, as the paper excludes unresolvable validation data.
    """

    def __init__(self, records: Iterable[ValidationRecord] = ()):
        self._records: List[ValidationRecord] = []
        self._by_pair: Dict[Tuple[int, int], List[ValidationRecord]] = {}
        for record in records:
            self.add(record)

    def add(self, record: ValidationRecord) -> None:
        existing = self._by_pair.setdefault(record.pair, [])
        for other in existing:
            if (
                other.source == record.source
                and other.relationship is record.relationship
                and other.provider == record.provider
            ):
                return  # exact duplicate from the same source
        existing.append(record)
        self._records.append(record)

    def merge(self, other: "ValidationCorpus") -> "ValidationCorpus":
        merged = ValidationCorpus(self._records)
        for record in other._records:
            merged.add(record)
        return merged

    def __len__(self) -> int:
        return len(self._by_pair)

    def __iter__(self) -> Iterator[ValidationRecord]:
        return iter(self._records)

    def pairs(self) -> Set[Tuple[int, int]]:
        return set(self._by_pair)

    def sources(self) -> List[str]:
        return sorted({r.source for r in self._records})

    def records_for(self, a: int, b: int) -> List[ValidationRecord]:
        return list(self._by_pair.get(canonical_pair(a, b), ()))

    def is_conflicted(self, a: int, b: int) -> bool:
        records = self._by_pair.get(canonical_pair(a, b), ())
        beliefs = {(r.relationship, r.provider) for r in records}
        return len(beliefs) > 1

    def consensus(self, a: int, b: int) -> Optional[ValidationRecord]:
        """The agreed belief for a link, or None if absent/conflicted."""
        records = self._by_pair.get(canonical_pair(a, b), ())
        if not records:
            return None
        beliefs = {(r.relationship, r.provider) for r in records}
        if len(beliefs) > 1:
            return None
        return records[0]

    def count_by_source(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self._records:
            counts[record.source] = counts.get(record.source, 0) + 1
        return counts

    def overlap(self, source_a: str, source_b: str) -> int:
        """Links covered by both sources."""
        pairs_a = {r.pair for r in self._records if r.source == source_a}
        pairs_b = {r.pair for r in self._records if r.source == source_b}
        return len(pairs_a & pairs_b)


def _record_from_truth(
    graph: ASGraph, a: int, b: int, source: str
) -> Optional[ValidationRecord]:
    rel = graph.relationship(a, b)
    if rel is None:
        return None
    provider = graph.provider_of(a, b) if rel is Relationship.P2C else None
    return ValidationRecord(
        a=a, b=b, relationship=rel, provider=provider, source=source
    )


def direct_report_corpus(
    graph: ASGraph,
    response_rate: float = 0.08,
    seed: int = 5,
    source: str = "direct",
) -> ValidationCorpus:
    """Operator-survey ground truth: each 'responding' AS reports all of
    its own links.  Response probability scales with network size
    (operators of large networks are over-represented, as the paper's
    survey was)."""
    rng = random.Random(seed)
    corpus = ValidationCorpus()
    for asys in graph.ases():
        if asys.type is ASType.IXP_RS:
            continue
        size_boost = min(3.0, 1.0 + len(graph.customers[asys.asn]) / 20.0)
        if rng.random() >= response_rate * size_boost:
            continue
        for neighbor in sorted(graph.neighbors(asys.asn)):
            record = _record_from_truth(graph, asys.asn, neighbor, source)
            if record is not None:
                corpus.add(record)
    return corpus
