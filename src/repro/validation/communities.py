"""BGP-communities validation source.

Many networks tag routes at ingress with informational communities that
encode the business relationship of the session the route arrived on
(e.g. ``X:1001`` = learned from a customer).  Mining collector RIBs for
these tags yields relationship assertions straight from router
configuration — the largest validation source in the paper.

The decoder: for a RIB entry with path ``… X Y … origin`` and community
``(X, code)``, the tagged AS is ``X`` and the neighbor the route
entered from is ``Y`` — the next hop toward the origin.  ``code``
states X's relationship with Y.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.bgp.collector import CODE_REL, RibEntry
from repro.relationships import RelClass, Relationship
from repro.validation.ground_truth import ValidationCorpus, ValidationRecord

# how a tagged ingress class translates into a relationship statement:
# "I learned this from my customer" → tagger is the provider, etc.
_RELCLASS_TO_RECORD = {
    RelClass.CUSTOMER: ("p2c", "tagger_is_provider"),
    RelClass.PROVIDER: ("p2c", "tagger_is_customer"),
    RelClass.PEER: ("p2p", None),
}


def decode_entry(
    entry: RibEntry,
    ixp_asns: frozenset = frozenset(),
) -> Iterable[ValidationRecord]:
    """Relationship assertions encoded in one RIB entry's communities.

    ``ixp_asns`` lets the miner skip route-server hops (and prepending
    is skipped implicitly), so the decoded neighbor is the tagger's real
    BGP session peer.
    """
    path = entry.path
    position: Dict[int, int] = {}
    for i, asn in enumerate(path):
        position.setdefault(asn, i)
    for tagger, code in entry.communities:
        relclass = CODE_REL.get(code)
        if relclass is None:
            continue
        i = position.get(tagger)
        if i is None:
            continue  # tagger not on path
        j = i + 1
        while j < len(path) and (path[j] == tagger or path[j] in ixp_asns):
            j += 1
        if j >= len(path):
            continue  # tagger is the origin
        neighbor = path[j]
        if relclass is RelClass.CUSTOMER:
            yield ValidationRecord(
                a=tagger, b=neighbor, relationship=Relationship.P2C,
                provider=tagger, source="communities",
            )
        elif relclass is RelClass.PROVIDER:
            yield ValidationRecord(
                a=tagger, b=neighbor, relationship=Relationship.P2C,
                provider=neighbor, source="communities",
            )
        elif relclass is RelClass.PEER:
            yield ValidationRecord(
                a=tagger, b=neighbor, relationship=Relationship.P2P,
                provider=None, source="communities",
            )


def communities_corpus(
    rib: Iterable[RibEntry], ixp_asns: frozenset = frozenset()
) -> ValidationCorpus:
    """Mine a collector RIB for relationship-encoding communities."""
    corpus = ValidationCorpus()
    for entry in rib:
        for record in decode_entry(entry, ixp_asns):
            corpus.add(record)
    return corpus
