"""Scoring inferred relationships against validation data.

Implements the paper's headline metric — positive predictive value per
relationship class — plus the per-step and per-source breakdowns and a
cross-algorithm comparison used by experiments E2/E3/E4/E6.

Any object exposing ``links()``, ``relationship(a, b)`` and
``provider_of(a, b)`` can be scored: both
:class:`repro.core.inference.InferenceResult` and the baselines'
:class:`repro.baselines.common.RelationshipMap` qualify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.relationships import Relationship, canonical_pair
from repro.topology.model import ASGraph
from repro.validation.ground_truth import ValidationCorpus, ValidationRecord


@dataclass
class ClassMetrics:
    """Correct/incorrect counts for one relationship class."""

    correct: int = 0
    incorrect: int = 0

    @property
    def total(self) -> int:
        return self.correct + self.incorrect

    @property
    def ppv(self) -> float:
        """Positive predictive value; 1.0 on an empty class by convention."""
        if not self.total:
            return 1.0
        return self.correct / self.total


@dataclass
class ValidationReport:
    """Outcome of scoring one inference against one corpus."""

    total_inferences: int
    validated: int  # inferences covered by unconflicted validation data
    conflicted: int  # links whose validation data disagrees with itself
    by_class: Dict[Relationship, ClassMetrics] = field(default_factory=dict)
    by_step: Dict[str, ClassMetrics] = field(default_factory=dict)
    by_source: Dict[str, ClassMetrics] = field(default_factory=dict)
    mistakes: List[Tuple[Tuple[int, int], Relationship, ValidationRecord]] = field(
        default_factory=list
    )

    @property
    def coverage(self) -> float:
        """Fraction of inferences that validation data can judge."""
        if not self.total_inferences:
            return 0.0
        return self.validated / self.total_inferences

    @property
    def overall_ppv(self) -> float:
        correct = sum(m.correct for m in self.by_class.values())
        total = sum(m.total for m in self.by_class.values())
        return correct / total if total else 1.0

    def ppv(self, relationship: Relationship) -> float:
        return self.by_class.get(relationship, ClassMetrics()).ppv


def _judge(
    inferred_rel: Relationship,
    inferred_provider: Optional[int],
    record: ValidationRecord,
) -> bool:
    if inferred_rel is not record.relationship:
        return False
    if record.relationship is Relationship.P2C:
        return inferred_provider == record.provider
    return True


def validate(
    inference,
    corpus: ValidationCorpus,
    step_lookup=None,
) -> ValidationReport:
    """Score ``inference`` against ``corpus``.

    ``step_lookup(a, b)`` optionally names the pipeline step that
    produced each link (for the E4 per-step table); pass
    ``result.step_of`` for an ASRank result.
    """
    total = len(inference.links())
    validated = 0
    conflicted = 0
    by_class: Dict[Relationship, ClassMetrics] = {}
    by_step: Dict[str, ClassMetrics] = {}
    by_source: Dict[str, ClassMetrics] = {}
    mistakes: List[Tuple[Tuple[int, int], Relationship, ValidationRecord]] = []

    for a, b in inference.links():
        records = corpus.records_for(a, b)
        if not records:
            continue
        consensus = corpus.consensus(a, b)
        if consensus is None:
            conflicted += 1
            continue
        validated += 1
        inferred_rel = inference.relationship(a, b)
        inferred_provider = inference.provider_of(a, b)
        correct = _judge(inferred_rel, inferred_provider, consensus)

        metrics = by_class.setdefault(inferred_rel, ClassMetrics())
        if correct:
            metrics.correct += 1
        else:
            metrics.incorrect += 1
            mistakes.append(((a, b), inferred_rel, consensus))

        if step_lookup is not None:
            step = step_lookup(a, b)
            if step is not None:
                step_metrics = by_step.setdefault(step.value, ClassMetrics())
                if correct:
                    step_metrics.correct += 1
                else:
                    step_metrics.incorrect += 1

        for record in records:
            source_metrics = by_source.setdefault(record.source, ClassMetrics())
            if correct:
                source_metrics.correct += 1
            else:
                source_metrics.incorrect += 1

    return ValidationReport(
        total_inferences=total,
        validated=validated,
        conflicted=conflicted,
        by_class=by_class,
        by_step=by_step,
        by_source=by_source,
        mistakes=mistakes,
    )


def validate_against_truth(inference, graph: ASGraph) -> ValidationReport:
    """Score against the full planted ground truth (oracle upper bound)."""
    corpus = ValidationCorpus()
    for a, b in inference.links():
        rel = graph.relationship(a, b)
        if rel is None:
            continue
        provider = graph.provider_of(a, b) if rel is Relationship.P2C else None
        corpus.add(
            ValidationRecord(
                a=a, b=b, relationship=rel, provider=provider, source="oracle"
            )
        )
    return validate(inference, corpus)


def compare_algorithms(
    inferences: Mapping[str, object],
    corpus: ValidationCorpus,
) -> Dict[str, ValidationReport]:
    """Score several algorithms against the same corpus (experiment E6)."""
    return {name: validate(inf, corpus) for name, inf in inferences.items()}


def agreement_matrix(
    inferences: Mapping[str, object],
) -> Dict[Tuple[str, str], float]:
    """Pairwise fraction of commonly-labeled links on which two
    algorithms agree (relationship and provider direction)."""
    names = sorted(inferences)
    matrix: Dict[Tuple[str, str], float] = {}
    for i, name_a in enumerate(names):
        for name_b in names[i:]:
            inf_a, inf_b = inferences[name_a], inferences[name_b]
            common = set(inf_a.links()) & set(inf_b.links())
            if not common:
                matrix[(name_a, name_b)] = 1.0
                continue
            agree = sum(
                1
                for a, b in common
                if inf_a.relationship(a, b) is inf_b.relationship(a, b)
                and inf_a.provider_of(a, b) == inf_b.provider_of(a, b)
            )
            matrix[(name_a, name_b)] = agree / len(common)
    return matrix
