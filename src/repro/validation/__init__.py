"""Validation framework: ground-truth corpora and accuracy metrics.

The paper assembles validation data from four independent sources —
relationships reported directly by operators, BGP communities that
encode the ingress relationship, RPSL import/export policies from the
IRR, and local routing policies — then scores the algorithm's
inferences by positive predictive value.  This package rebuilds each
source from the simulation substrate and implements the scoring.
"""

from repro.validation.ground_truth import ValidationCorpus, ValidationRecord, direct_report_corpus
from repro.validation.communities import communities_corpus
from repro.validation.rpsl import RpslObject, generate_rpsl, parse_rpsl, rpsl_corpus
from repro.validation.policy import routing_policy_corpus
from repro.validation.validator import (
    ClassMetrics,
    ValidationReport,
    agreement_matrix,
    compare_algorithms,
    validate,
    validate_against_truth,
)

__all__ = [
    "ValidationCorpus",
    "ValidationRecord",
    "direct_report_corpus",
    "communities_corpus",
    "RpslObject",
    "generate_rpsl",
    "parse_rpsl",
    "rpsl_corpus",
    "routing_policy_corpus",
    "ClassMetrics",
    "ValidationReport",
    "agreement_matrix",
    "compare_algorithms",
    "validate",
    "validate_against_truth",
]
