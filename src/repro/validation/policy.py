"""Routing-policy validation source (LOCAL_PREF conventions).

The paper's fourth validation source infers relationships from routing
policy visible in looking glasses: almost every network prefers
customer routes over peer routes over provider routes, and encodes that
as a LOCAL_PREF band per neighbor.  We model a sample of networks whose
per-neighbor LOCAL_PREF assignments are visible, and decode the bands
back into relationship assertions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.relationships import Relationship
from repro.topology.model import ASGraph, ASType
from repro.validation.ground_truth import ValidationCorpus, ValidationRecord

# conventional LOCAL_PREF bands
LPREF_CUSTOMER = 100
LPREF_PEER = 90
LPREF_PROVIDER = 80


@dataclass(frozen=True)
class LocalPrefEntry:
    """One visible policy line: this AS assigns ``lpref`` to ``neighbor``."""

    asn: int
    neighbor: int
    lpref: int


def generate_localpref_tables(
    graph: ASGraph,
    visibility_rate: float = 0.1,
    seed: int = 23,
    jitter: int = 5,
) -> List[LocalPrefEntry]:
    """Per-neighbor LOCAL_PREF assignments for a sample of networks.

    ``jitter`` models per-network deviations within a band (a network
    might use 110 for customers or 85 for peers); bands never overlap.
    """
    rng = random.Random(seed)
    entries: List[LocalPrefEntry] = []
    for asys in graph.ases():
        if asys.type is ASType.IXP_RS:
            continue
        if rng.random() >= visibility_rate:
            continue
        asn = asys.asn
        offset = rng.randint(0, jitter) - jitter // 2
        for customer in sorted(graph.customers[asn]):
            entries.append(LocalPrefEntry(asn, customer, LPREF_CUSTOMER + offset))
        for peer in sorted(graph.peers[asn]):
            entries.append(LocalPrefEntry(asn, peer, LPREF_PEER + offset))
        for provider in sorted(graph.providers[asn]):
            entries.append(LocalPrefEntry(asn, provider, LPREF_PROVIDER + offset))
    return entries


def decode_localpref(entries: Iterable[LocalPrefEntry]) -> Iterable[ValidationRecord]:
    """Map LOCAL_PREF bands back to relationship assertions.

    Decoding is *per network*: bands are ranked within each AS's own
    table, so a network-wide offset does not confuse the miner.
    """
    by_asn: Dict[int, List[LocalPrefEntry]] = {}
    for entry in entries:
        by_asn.setdefault(entry.asn, []).append(entry)
    for asn, rows in sorted(by_asn.items()):
        distinct = sorted({row.lpref for row in rows}, reverse=True)
        if not distinct:
            continue
        # rank bands high→low: customer, then peer, then provider; with
        # fewer than three bands the top band is still customers only
        # if more than one band exists, else undecidable
        if len(distinct) != 3:
            # with fewer than three bands the role of each band is
            # ambiguous (customers+providers looks like customers+peers);
            # the miner only trusts fully-banded tables
            continue
        band_role = dict(zip(distinct, ["customer", "peer", "provider"]))
        for row in rows:
            role = band_role.get(row.lpref)
            if role == "customer":
                yield ValidationRecord(
                    a=asn, b=row.neighbor, relationship=Relationship.P2C,
                    provider=asn, source="policy",
                )
            elif role == "provider":
                yield ValidationRecord(
                    a=asn, b=row.neighbor, relationship=Relationship.P2C,
                    provider=row.neighbor, source="policy",
                )
            elif role == "peer":
                yield ValidationRecord(
                    a=asn, b=row.neighbor, relationship=Relationship.P2P,
                    provider=None, source="policy",
                )


def routing_policy_corpus(
    graph: ASGraph, visibility_rate: float = 0.1, seed: int = 23
) -> ValidationCorpus:
    """Generate visible LOCAL_PREF tables and mine them."""
    entries = generate_localpref_tables(graph, visibility_rate, seed)
    corpus = ValidationCorpus()
    for record in decode_localpref(entries):
        corpus.add(record)
    return corpus
