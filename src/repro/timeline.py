"""Time-travel: a delta-encoded timeline of snapshot eras.

The paper's signature analysis is longitudinal (1998-2013): cone
growth, clique churn, and relationship flips only mean something when
tracked era over era.  A :class:`Timeline` packages an ordered
sequence of :class:`~repro.serve.snapshot.Snapshot` eras into one
checksummed container the serving tier can time-travel over
(``?as_of=``, ``/eras``, ``/diff``, ``/history``).

Storage model — eras share the DenseIndex prefix.  The evolution
model only ever *adds* ASes and mints each new ASN above every
existing one, so each era's sorted ASN list is a prefix-extension of
the previous era's and dense ids are stable across eras.  Era 0 is a
full REPROSNP section set; every later era stores only what changed:

* ``asns+``   — the new-ASN suffix (packed ``<Q``).
* ``links-``  — canonical ``(a_id, b_id)`` pairs that vanished
  (packed ``<II``).
* ``links+``  — rows added *or retyped* (packed like a full ``links``
  section); reconstruction is delete-then-upsert over the previous
  era's row map, then a sort — provably the same sorted row list a
  full snapshot would carry.
* ``cones:*`` — per-AS bitset XOR against the previous era for shared
  ids (cones mostly grow, so the XOR is sparse), full bitsets for new
  ids; framed exactly like a full cones section.
* ``ranks``/``stats``/``meta`` — stored full (the rank table reorders
  too much to delta and the JSON blobs are tiny).

Every delta-era section is stored zlib-compressed: a cone XOR mask is
almost all zero bytes (a cone that gained two members differs in two
bits), and the rank rows are small ints in wide fields, so DEFLATE
takes the delta payload to a few percent of the full sections.  Full
eras stay raw — era 0 reads exactly like a REPROSNP payload.

If a pair of adjacent eras does *not* share the prefix (hand-built
snapshots, differing definition sets), that era degrades to ``full``
— correctness never depends on the growth model, only the compression
does.

The container reuses the REPROSNP framing (fixed header + JSON header
+ 64-byte-aligned payload, per-section sha256, atomic replace-on-save)
under its own magic, with section names prefixed ``era{i}:``.  The
timeline version is content-derived over every section, so any byte
of any era changing changes the version — the serving cache key.

Materialization is lazy: ``snapshot(era)`` reconstructs eras on
demand by walking deltas forward from the nearest cached ancestor and
keeps a small LRU of reconstructed snapshots, so historical reads pay
the delta walk once.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import os
import re
import struct
import tempfile
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.cone import ConeDefinition
from repro.relationships import Relationship
from repro.serve.snapshot import (
    Snapshot,
    SnapshotFormatError,
    _NO_PROVIDER,
    _PROVIDER_A,
    _cone_section,
    _decode_cones,
    _decode_links,
    _decode_ranks,
    _encode_cones,
    _encode_links,
    _encode_ranks,
    _json_bytes,
)
from repro.serve.store import (
    FORMAT_VERSION,
    SECTION_ALIGNMENT,
    TimelineLookupError,
    _SectionReader,
    _align,
)

__all__ = [
    "EraInfo",
    "Timeline",
    "TimelineFormatError",
    "TimelineLookupError",
    "TIMELINE_MAGIC",
    "build_timeline",
    "default_era_dates",
    "era_snapshots",
    "load_timeline",
    "read_timeline_header",
    "save_timeline",
]

TIMELINE_MAGIC = b"REPROTLN"
_FIXED = struct.Struct("<8sII")
_PAIR_STRUCT = struct.Struct("<II")

#: the paper's observation window starts here; era i defaults to
#: January 1st of ``start_year + i``
DEFAULT_START_YEAR = 1998


class TimelineFormatError(SnapshotFormatError):
    """Raised on a malformed, truncated or corrupted timeline blob."""


@dataclass(frozen=True)
class EraInfo:
    """One era's header entry (everything but the payload bytes)."""

    index: int
    label: str
    date: str
    kind: str  # "full" | "delta"
    snapshot_version: str
    n_ases: int
    n_links: int

    def to_header(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "date": self.date,
            "kind": self.kind,
            "snapshot_version": self.snapshot_version,
            "n_ases": self.n_ases,
            "n_links": self.n_links,
        }


def default_era_dates(
    n: int, start_year: int = DEFAULT_START_YEAR
) -> List[str]:
    """One ISO date per era: Jan 1 of consecutive years."""
    return [f"{start_year + i:04d}-01-01" for i in range(n)]


# ---------------------------------------------------------------------------
# delta codec
# ---------------------------------------------------------------------------


def _link_tuple_map(
    snapshot: Snapshot,
) -> Dict[Tuple[int, int], Tuple[int, int]]:
    return {
        (int(a), int(b)): (int(code), int(flag))
        for a, b, code, flag in snapshot._links_as_tuples()
    }


def _prefix_compatible(prev: Snapshot, nxt: Snapshot) -> bool:
    """Can ``nxt`` be stored as a delta against ``prev``?"""
    prev_asns = list(prev.asns)
    next_asns = list(nxt.asns)
    return (
        len(next_asns) >= len(prev_asns)
        and next_asns[: len(prev_asns)] == prev_asns
        and prev.meta.get("definitions") == nxt.meta.get("definitions")
    )


def _encode_delta(prev: Snapshot, nxt: Snapshot) -> Dict[str, bytes]:
    """Encode ``nxt`` as sections relative to ``prev`` (prefix-checked
    by the caller)."""
    n_prev = len(prev.asns)
    suffix = list(nxt.asns[n_prev:])
    sections: Dict[str, bytes] = {
        "asns+": struct.pack(f"<{len(suffix)}Q", *suffix),
    }

    prev_map = _link_tuple_map(prev)
    next_map = _link_tuple_map(nxt)
    removed = sorted(key for key in prev_map if key not in next_map)
    upserts = sorted(
        (a, b, code, flag)
        for (a, b), (code, flag) in next_map.items()
        if prev_map.get((a, b)) != (code, flag)
    )
    sections["links-"] = b"".join(
        _PAIR_STRUCT.pack(a, b) for a, b in removed
    )
    sections["links+"] = _encode_links(upserts)

    for definition in nxt.definitions:
        prev_bits = prev._cone_bits(definition)
        next_bits = nxt._cone_bits(definition)
        delta = [prev_bits[i] ^ next_bits[i] for i in range(n_prev)]
        delta.extend(next_bits[i] for i in range(n_prev, len(nxt.asns)))
        sections[_cone_section(definition)] = _encode_cones(delta)

    sections["ranks"] = _encode_ranks(nxt._ranks_as_tuples())
    sections["stats"] = _json_bytes(nxt.stats)
    sections["meta"] = _json_bytes(nxt.meta)
    return sections


def _decode_link_keys(blob: bytes) -> List[Tuple[int, int]]:
    if len(blob) % _PAIR_STRUCT.size:
        raise TimelineFormatError("links- section truncated")
    return [tuple(pair) for pair in _PAIR_STRUCT.iter_unpack(blob)]


def _timeline_version(sections: Dict[str, bytes]) -> str:
    """Content hash over every era section (12 hex digits) — the same
    recipe as :meth:`Snapshot.content_version` so rebuilds that change
    nothing keep their ETags."""
    digest = hashlib.sha256()
    for name in sorted(sections):
        blob = sections[name]
        digest.update(name.encode())
        digest.update(struct.pack("<Q", len(blob)))
        digest.update(blob)
    return digest.hexdigest()[:12]


# ---------------------------------------------------------------------------
# the timeline
# ---------------------------------------------------------------------------


class Timeline:
    """An ordered sequence of snapshot eras behind one version string.

    ``loader`` maps era-prefixed section names (``era0:links``,
    ``era2:asns+``) to bytes — an in-memory dict right after
    :func:`build_timeline`, a checksumming :class:`_SectionReader`
    after :func:`load_timeline`.
    """

    #: reconstructed-snapshot LRU size; 2 is the working minimum (a
    #: delta era materializes against its predecessor)
    DEFAULT_CACHE = 4

    def __init__(
        self,
        eras: Sequence[EraInfo],
        loader: Callable[[str], bytes],
        version: str,
        section_names: Sequence[str],
        path: Optional[str] = None,
        cache_size: int = DEFAULT_CACHE,
        sections: Optional[Dict[str, bytes]] = None,
        reader=None,
    ):
        if not eras:
            raise TimelineFormatError("a timeline needs at least one era")
        self.eras: List[EraInfo] = list(eras)
        self.version = version
        self.path = path
        self._load = loader
        self._section_names = list(section_names)
        self._sections = sections  # only set for in-memory builds
        self._reader = reader
        self._cache_size = max(2, cache_size)
        self._cache: "OrderedDict[int, Snapshot]" = OrderedDict()
        # RLock: materializing a delta era recurses into snapshot(i-1)
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self.eras)

    @property
    def latest(self) -> Snapshot:
        return self.snapshot(len(self.eras) - 1)

    def era_bytes(self, index: int) -> int:
        """Stored payload bytes for one era (sum of its sections)."""
        prefix = f"era{index}:"
        return sum(
            len(self._load(name))
            for name in self._section_names
            if name.startswith(prefix)
        )

    # -- era resolution -------------------------------------------------

    def resolve(self, token) -> int:
        """Era index for an ``as_of`` token: an era index, an era
        label, or an ISO date (latest era dated at or before it).

        Raises :class:`TimelineLookupError` on anything malformed or
        out of range.
        """
        if isinstance(token, int):
            return self._check_index(token)
        text = str(token).strip()
        if not text:
            raise TimelineLookupError("empty as_of value")
        if re.fullmatch(r"[+-]?\d+", text):
            return self._check_index(int(text))
        for info in self.eras:
            if info.label == text:
                return info.index
        try:
            datetime.date.fromisoformat(text)
        except ValueError:
            raise TimelineLookupError(
                f"as_of {text!r} is not an era index, era label, or "
                f"YYYY-MM-DD date"
            ) from None
        best = None
        for info in self.eras:
            if info.date <= text:
                best = info.index
        if best is None:
            raise TimelineLookupError(
                f"no era at or before {text} (earliest is "
                f"{self.eras[0].date})"
            )
        return best

    def _check_index(self, era: int) -> int:
        if not 0 <= era < len(self.eras):
            raise TimelineLookupError(
                f"era {era} out of range 0..{len(self.eras) - 1}"
            )
        return era

    # -- materialization ------------------------------------------------

    def snapshot(self, era: int) -> Snapshot:
        """The fully materialized :class:`Snapshot` for one era."""
        era = self._check_index(era)
        with self._lock:
            cached = self._cache.get(era)
            if cached is not None:
                self._cache.move_to_end(era)
                return cached
            snapshot = self._materialize(era)
            self._cache[era] = snapshot
            self._cache.move_to_end(era)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
            return snapshot

    def _section(self, era: int, name: str) -> bytes:
        blob = self._load(f"era{era}:{name}")
        if self.eras[era].kind == "delta":
            try:
                return zlib.decompress(bytes(blob))
            except zlib.error as exc:
                raise TimelineFormatError(
                    f"era {era} section {name!r} does not inflate: {exc}"
                ) from None
        return blob

    def _materialize(self, era: int) -> Snapshot:
        info = self.eras[era]
        if info.kind == "full":
            prefix = f"era{era}:"
            loader = self._load
            snapshot = Snapshot.from_sections(
                meta_blob=bytes(self._section(era, "meta")),
                stats_blob=bytes(self._section(era, "stats")),
                asns_blob=bytes(self._section(era, "asns")),
                version=info.snapshot_version,
                loader=lambda name: loader(prefix + name),
            )
            return snapshot
        if info.kind != "delta":
            raise TimelineFormatError(
                f"era {era} has unknown kind {info.kind!r}"
            )
        base = self.snapshot(era - 1)

        suffix_blob = bytes(self._section(era, "asns+"))
        if len(suffix_blob) % 8:
            raise TimelineFormatError("asns+ section not a multiple of 8")
        suffix = list(
            struct.unpack(f"<{len(suffix_blob) // 8}Q", suffix_blob)
        )
        asns = list(base.asns) + suffix
        n = len(asns)

        link_map = _link_tuple_map(base)
        for key in _decode_link_keys(bytes(self._section(era, "links-"))):
            if link_map.pop(key, None) is None:
                raise TimelineFormatError(
                    f"era {era} removes link {key} absent from era "
                    f"{era - 1}"
                )
        for a, b, code, flag in _decode_links(
            bytes(self._section(era, "links+"))
        ):
            link_map[(a, b)] = (code, flag)
        rows = sorted(
            (a, b, code, flag)
            for (a, b), (code, flag) in link_map.items()
        )

        try:
            meta = json.loads(bytes(self._section(era, "meta")))
            stats = json.loads(bytes(self._section(era, "stats")))
        except ValueError as exc:
            raise TimelineFormatError(
                f"era {era} meta/stats JSON: {exc}"
            ) from None

        snapshot = Snapshot(
            asns=asns,
            meta=meta,
            stats=stats,
            version=info.snapshot_version,
        )
        snapshot._attach_links(rows)
        snapshot._attach_ranks(
            _decode_ranks(bytes(self._section(era, "ranks")))
        )
        n_prev = len(base.asns)
        for definition in snapshot.definitions:
            delta = _decode_cones(
                bytes(self._section(era, _cone_section(definition))), n
            )
            prev_bits = base._cone_bits(definition)
            bits = [prev_bits[i] ^ delta[i] for i in range(n_prev)]
            bits.extend(delta[n_prev:])
            snapshot._cones[definition.value] = bits
        return snapshot

    def verify_content(self) -> None:
        """Materialize every era and check its content version.

        Stronger (and slower) than the per-section checksums: proves
        the delta walk reconstructs exactly the snapshot that was
        encoded at build time.
        """
        for info in self.eras:
            rebuilt = self.snapshot(info.index)
            version = rebuilt.content_version()
            if version != info.snapshot_version:
                raise TimelineFormatError(
                    f"era {info.index} materialized to {version}, "
                    f"header says {info.snapshot_version}"
                )

    # -- analytics ------------------------------------------------------

    def diff(
        self, era_a: int, era_b: int, max_examples: int = 10
    ) -> Dict[str, object]:
        """Era-over-era comparison, computed set-wise in ASN space.

        Works across any era pair (including ``full``-fallback eras
        whose id spaces differ) because everything is compared by ASN,
        never by dense id.
        """
        era_a = self._check_index(era_a)
        era_b = self._check_index(era_b)
        snap_a = self.snapshot(era_a)
        snap_b = self.snapshot(era_b)

        asns_a = set(snap_a.asns)
        asns_b = set(snap_b.asns)
        born = sorted(asns_b - asns_a)
        gone = sorted(asns_a - asns_b)

        links_a = _asn_link_map(snap_a)
        links_b = _asn_link_map(snap_b)
        added = sorted(k for k in links_b if k not in links_a)
        removed = sorted(k for k in links_a if k not in links_b)
        flips: Dict[str, int] = {}
        flip_examples: List[List[object]] = []
        for key in links_a.keys() & links_b.keys():
            before, after = links_a[key], links_b[key]
            if before == after:
                continue
            transition = f"{before}->{after}"
            flips[transition] = flips.get(transition, 0) + 1
            if len(flip_examples) < max_examples:
                flip_examples.append(
                    [key[0], key[1], before, after]
                )
        flip_examples.sort()

        clique_a = set(snap_a.meta.get("clique", ()))
        clique_b = set(snap_b.meta.get("clique", ()))

        shared_defs = sorted(
            set(snap_a.meta["definitions"])
            & set(snap_b.meta["definitions"])
        )
        shared_asns = sorted(asns_a & asns_b)
        cones: Dict[str, Dict[str, int]] = {}
        for value in shared_defs:
            definition = ConeDefinition(value)
            grown = shrunk = unchanged = 0
            growth = churn = 0
            for asn in shared_asns:
                cone_a = snap_a.cone(asn, definition)
                cone_b = snap_b.cone(asn, definition)
                if len(cone_b) > len(cone_a):
                    grown += 1
                elif len(cone_b) < len(cone_a):
                    shrunk += 1
                else:
                    unchanged += 1
                growth += len(cone_b) - len(cone_a)
                churn += len(cone_a ^ cone_b)
            cones[value] = {
                "grown": grown,
                "shrunk": shrunk,
                "unchanged": unchanged,
                "total_growth": growth,
                "membership_churn": churn,
            }

        return {
            "era_a": era_a,
            "era_b": era_b,
            "snapshot_a": snap_a.version,
            "snapshot_b": snap_b.version,
            "ases": {
                "a": len(asns_a),
                "b": len(asns_b),
                "new_count": len(born),
                "vanished_count": len(gone),
                "new": born[:max_examples],
                "vanished": gone[:max_examples],
            },
            "links": {
                "a": len(links_a),
                "b": len(links_b),
                "added": len(added),
                "removed": len(removed),
                "flips": dict(sorted(flips.items())),
                "flip_examples": flip_examples[:max_examples],
            },
            "clique": {
                "a": sorted(clique_a),
                "b": sorted(clique_b),
                "entered": sorted(clique_b - clique_a),
                "left": sorted(clique_a - clique_b),
            },
            "cones": cones,
        }

    def history(self, asn: int) -> List[Dict[str, object]]:
        """Per-era rank/degree/cone-size series for one AS."""
        series: List[Dict[str, object]] = []
        for info in self.eras:
            snapshot = self.snapshot(info.index)
            row: Dict[str, object] = {
                "era": info.index,
                "label": info.label,
                "date": info.date,
                "snapshot": info.snapshot_version,
                "present": asn in snapshot,
            }
            entry = snapshot.rank_entry(asn)
            if entry is not None:
                row.update(
                    rank=entry.rank,
                    cone_ases=entry.cone_ases,
                    transit_degree=entry.transit_degree,
                    node_degree=entry.node_degree,
                    num_customers=entry.num_customers,
                    num_peers=entry.num_peers,
                    num_providers=entry.num_providers,
                )
            series.append(row)
        return series

    def close(self) -> None:
        """Release the backing reader; idempotent."""
        with self._lock:
            self._cache.clear()
        if self._reader is not None:
            self._reader.close()


def _asn_link_map(snapshot: Snapshot) -> Dict[Tuple[int, int], str]:
    """Canonical (asn_lo, asn_hi) -> oriented relationship label.

    ``p2c`` means the lower-numbered AS is the provider, ``c2p`` the
    higher-numbered one — so a provider-direction flip shows up as a
    relationship change even though the code stays P2C.
    """
    asns = snapshot.asns
    out: Dict[Tuple[int, int], str] = {}
    p2c = int(Relationship.P2C)
    for a_id, b_id, code, flag in snapshot._links_as_tuples():
        if code == p2c and flag != _NO_PROVIDER:
            label = "p2c" if flag == _PROVIDER_A else "c2p"
        else:
            label = Relationship(code).label
        out[(int(asns[a_id]), int(asns[b_id]))] = label
    return out


# ---------------------------------------------------------------------------
# build / save / load
# ---------------------------------------------------------------------------


def build_timeline(
    snapshots: Sequence[Tuple[str, Snapshot]],
    dates: Optional[Sequence[str]] = None,
    start_year: int = DEFAULT_START_YEAR,
) -> Timeline:
    """Delta-encode an ordered ``(label, Snapshot)`` sequence.

    Era 0 is stored full; each later era is stored as a delta when it
    prefix-extends its predecessor (the evolution model guarantees
    this) and degrades to full otherwise.  ``dates`` defaults to one
    year per era starting at ``start_year``.
    """
    if not snapshots:
        raise ValueError("build_timeline needs at least one snapshot")
    if dates is None:
        dates = default_era_dates(len(snapshots), start_year)
    if len(dates) != len(snapshots):
        raise ValueError(
            f"{len(snapshots)} snapshots but {len(dates)} dates"
        )
    if list(dates) != sorted(dates):
        raise ValueError("era dates must be non-decreasing")

    sections: Dict[str, bytes] = {}
    eras: List[EraInfo] = []
    prev: Optional[Snapshot] = None
    for i, (label, snapshot) in enumerate(snapshots):
        if prev is None or not _prefix_compatible(prev, snapshot):
            kind = "full"
            encoded = snapshot.encode_sections()
        else:
            kind = "delta"
            encoded = {
                name: zlib.compress(blob, 6)
                for name, blob in _encode_delta(prev, snapshot).items()
            }
        for name, blob in encoded.items():
            sections[f"era{i}:{name}"] = blob
        eras.append(
            EraInfo(
                index=i,
                label=label,
                date=str(dates[i]),
                kind=kind,
                snapshot_version=(
                    snapshot.version or snapshot.content_version()
                ),
                n_ases=len(snapshot.asns),
                n_links=len(snapshot._links_as_tuples()),
            )
        )
        prev = snapshot

    return Timeline(
        eras=eras,
        loader=sections.__getitem__,
        version=_timeline_version(sections),
        section_names=sorted(sections),
        sections=sections,
    )


def era_snapshots(
    series,
    collector_config=None,
    inference_config=None,
    vps_per_as: float = 0.05,
    workers: int = 0,
) -> List[Tuple[str, Snapshot]]:
    """Run the longitudinal pipeline over a ``(label, ASGraph)``
    series and compile one full :class:`Snapshot` per era.

    Vantage points persist across eras (as RouteViews' did), so the
    observed deltas are topology changes, not collector churn.  This
    is the builder behind ``repro-asrank timeline build``, the bench
    and the smoke.
    """
    from repro.analysis.timeseries import series_metrics
    from repro.asrank import ASRank

    metrics = series_metrics(
        series,
        collector_config=collector_config,
        inference_config=inference_config,
        vps_per_as=vps_per_as,
        workers=workers,
    )
    snapshots: List[Tuple[str, Snapshot]] = []
    for (label, graph), era in zip(series, metrics):
        facade = ASRank(
            era.result.paths,
            config=era.result.config,
            prefixes_by_asn={a.asn: a.prefixes for a in graph.ases()},
        )
        facade._result = era.result
        snapshots.append(
            (label, facade.snapshot(source=f"era:{label}"))
        )
    return snapshots


def save_timeline(timeline: Timeline, path: str) -> str:
    """Write ``timeline`` to ``path`` atomically; returns its version."""
    sections = timeline._sections
    if sections is None:
        # re-serialize a file-backed timeline from its reader
        sections = {
            name: bytes(timeline._load(name))
            for name in timeline._section_names
        }
    table: Dict[str, Dict[str, object]] = {}
    payload_parts: List[bytes] = []
    offset = 0
    for name in sorted(sections):
        blob = sections[name]
        padded = _align(offset, SECTION_ALIGNMENT)
        if padded != offset:
            payload_parts.append(b"\0" * (padded - offset))
            offset = padded
        table[name] = {
            "offset": offset,
            "length": len(blob),
            "sha256": hashlib.sha256(blob).hexdigest(),
        }
        payload_parts.append(blob)
        offset += len(blob)
    payload = b"".join(payload_parts)
    header = json.dumps(
        {
            "version": timeline.version,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "minor": 0,
            "alignment": SECTION_ALIGNMENT,
            "eras": [info.to_header() for info in timeline.eras],
            "sections": table,
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode()
    payload_start = _align(_FIXED.size + len(header), SECTION_ALIGNMENT)
    header += b" " * (payload_start - _FIXED.size - len(header))

    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tln.tmp")
    try:
        with os.fdopen(fd, "wb") as stream:
            stream.write(
                _FIXED.pack(TIMELINE_MAGIC, FORMAT_VERSION, len(header))
            )
            stream.write(header)
            stream.write(payload)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return timeline.version


def _read_timeline_header(stream) -> Dict[str, object]:
    fixed = stream.read(_FIXED.size)
    if len(fixed) < _FIXED.size:
        raise TimelineFormatError("file too short for a timeline header")
    magic, fmt, header_len = _FIXED.unpack(fixed)
    if magic != TIMELINE_MAGIC:
        raise TimelineFormatError(f"bad magic {magic!r}")
    if fmt != FORMAT_VERSION:
        raise TimelineFormatError(f"unsupported timeline format {fmt}")
    header_blob = stream.read(header_len)
    if len(header_blob) < header_len:
        raise TimelineFormatError("truncated timeline header")
    try:
        header = json.loads(header_blob)
    except ValueError as exc:
        raise TimelineFormatError(f"bad header JSON: {exc}") from None
    for key in ("version", "eras", "sections"):
        if key not in header:
            raise TimelineFormatError(f"header missing {key!r}")
    return header


def read_timeline_header(path: str) -> Tuple[Dict[str, object], int]:
    """The parsed JSON header and the payload's file offset (what
    ``repro-asrank timeline info`` prints from)."""
    with open(path, "rb") as stream:
        header = _read_timeline_header(stream)
        return header, stream.tell()


def _eras_from_header(header: Dict[str, object]) -> List[EraInfo]:
    eras: List[EraInfo] = []
    for i, entry in enumerate(header["eras"]):
        try:
            info = EraInfo(
                index=i,
                label=str(entry["label"]),
                date=str(entry["date"]),
                kind=str(entry["kind"]),
                snapshot_version=str(entry["snapshot_version"]),
                n_ases=int(entry["n_ases"]),
                n_links=int(entry["n_links"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TimelineFormatError(
                f"era {i} header entry malformed: {exc}"
            ) from None
        if info.kind not in ("full", "delta"):
            raise TimelineFormatError(
                f"era {i} has unknown kind {info.kind!r}"
            )
        if i == 0 and info.kind != "full":
            raise TimelineFormatError("era 0 must be stored full")
        eras.append(info)
    return eras


def load_timeline(
    path: str, verify: bool = False, cache_size: int = Timeline.DEFAULT_CACHE
) -> Timeline:
    """Open a timeline file behind a checksumming section reader.

    Sections are read (and sha256-verified, first touch) on demand off
    one pinned file handle — ``os.replace`` of the path never changes
    what an open timeline serves.  ``verify=True`` forces every
    section through its checksum up front, the same contract a
    pre-fork worker relies on before committing a reload.
    """
    stream = open(path, "rb")
    try:
        header = _read_timeline_header(stream)
        payload_offset = stream.tell()
    except BaseException:
        stream.close()
        raise
    reader = _SectionReader(path, header, payload_offset, stream)
    if verify:
        reader.verify_all()
    return Timeline(
        eras=_eras_from_header(header),
        loader=reader,
        version=str(header["version"]),
        section_names=sorted(header["sections"]),
        path=path,
        cache_size=cache_size,
        reader=reader,
    )
