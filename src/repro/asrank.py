"""High-level facade: the whole system behind one class.

:class:`ASRank` bundles sanitize → infer → cones → rank behind a
single object with lazy, cached stages, plus constructors for every
input format the ecosystem uses (path lists, path files, MRT RIB dumps,
MRT update streams) and a one-call exporter for CAIDA-format artifacts.

    >>> from repro.asrank import ASRank
    >>> asrank = ASRank.from_paths([(10, 1, 2, 20), (20, 2, 1, 10)])
    >>> asrank.relationship(1, 2)
    <Relationship.P2P: 0>
"""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro import perf
from repro.core.cone import ConeDefinition, CustomerCones
from repro.core.inference import (
    InferenceConfig,
    InferenceResult,
    infer_relationships,
)
from repro.core.paths import PathSet
from repro.core.prediction import PredictionReport, predict_paths
from repro.core.rank import ASRankEntry, rank_ases
from repro.datasets.serialization import (
    load_paths,
    save_as_rel,
    save_ppdc_ases,
)
from repro.net.prefix import Prefix
from repro.relationships import Relationship


class ASRank:
    """Run the full ASRank pipeline over an AS-path corpus.

    All stages are computed lazily and cached: constructing the object
    is cheap, the first query pays for inference, cone queries pay for
    cone computation once per definition.
    """

    def __init__(
        self,
        paths: PathSet,
        config: Optional[InferenceConfig] = None,
        prefixes_by_asn: Optional[Dict[int, Sequence[Prefix]]] = None,
    ):
        self.paths = paths
        self.config = config or InferenceConfig()
        self.prefixes_by_asn = prefixes_by_asn
        self._result: Optional[InferenceResult] = None
        self._cones: Dict[ConeDefinition, CustomerCones] = {}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_paths(
        cls,
        raw_paths: Iterable[Sequence[int]],
        ixp_asns: FrozenSet[int] = frozenset(),
        config: Optional[InferenceConfig] = None,
        prefixes_by_asn: Optional[Dict[int, Sequence[Prefix]]] = None,
    ) -> "ASRank":
        """Build from raw (unsanitized) AS paths."""
        return cls(
            PathSet.sanitize(raw_paths, ixp_asns=ixp_asns),
            config=config,
            prefixes_by_asn=prefixes_by_asn,
        )

    @classmethod
    def from_path_file(
        cls,
        path: str,
        ixp_asns: FrozenSet[int] = frozenset(),
        config: Optional[InferenceConfig] = None,
    ) -> "ASRank":
        """Build from a text path file (one space-separated path per line)."""
        return cls.from_paths(load_paths(path), ixp_asns=ixp_asns, config=config)

    @classmethod
    def from_mrt(
        cls,
        path: str,
        ixp_asns: FrozenSet[int] = frozenset(),
        config: Optional[InferenceConfig] = None,
    ) -> "ASRank":
        """Build from an MRT file (RIB dump and/or update stream).

        Snapshot RIB rows seed a per-(prefix, peer) table which the
        update messages then mutate: announcements replace entries
        (re-announced snapshot routes are not double-counted) and
        withdrawals delete them.  Prefix origins found in the dump feed
        the prefix/address cone metrics automatically.
        """
        from repro.mrt.reader import MrtReader, RibRecord, UpdateRecord
        from repro.mrt.updates import rib_from_updates

        snapshot_rows: List[RibRecord] = []
        updates: List[UpdateRecord] = []
        with open(path, "rb") as stream:
            for record in MrtReader(stream):
                if isinstance(record, RibRecord):
                    snapshot_rows.append(record)
                elif isinstance(record, UpdateRecord):
                    updates.append(record)
        rib_rows = rib_from_updates(updates, base=snapshot_rows)

        prefixes_by_asn: Dict[int, Set[Prefix]] = {}
        for row in rib_rows:
            if row.as_path:
                prefixes_by_asn.setdefault(row.as_path[-1], set()).add(
                    row.prefix
                )
        return cls.from_paths(
            (row.as_path for row in rib_rows),
            ixp_asns=ixp_asns,
            config=config,
            prefixes_by_asn={
                asn: sorted(prefixes)
                for asn, prefixes in prefixes_by_asn.items()
            },
        )

    # ------------------------------------------------------------------
    # cached stages
    # ------------------------------------------------------------------

    @property
    def result(self) -> InferenceResult:
        """The inference result (computed on first access).

        Stage timings land under ``asrank/infer`` in the active
        :mod:`repro.perf` recorder."""
        if self._result is None:
            with perf.stage("asrank"):
                with perf.stage("infer"):
                    self._result = infer_relationships(
                        self.paths, self.config
                    )
        return self._result

    def rel_graph(self) -> "RelGraph":
        """The one :class:`~repro.graph.relgraph.RelGraph` compiled from
        this facade's inference result — shared by cones, the snapshot
        builder, and any other columnar consumer (cached on the result,
        so repeated calls return the identical object)."""
        from repro.graph.relgraph import RelGraph

        return RelGraph.of(self.result)

    def cones(
        self,
        definition: ConeDefinition = ConeDefinition.PROVIDER_PEER_OBSERVED,
    ) -> CustomerCones:
        """Customer cones under ``definition`` (cached per definition).

        Stage timings land under ``asrank/cones``."""
        if definition not in self._cones:
            graph = self.rel_graph()  # outside: may trigger inference
            with perf.stage("asrank"):
                with perf.stage("cones"):
                    self._cones[definition] = CustomerCones.compute(
                        graph,
                        definition,
                        prefixes_by_asn=self.prefixes_by_asn,
                    )
        return self._cones[definition]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def relationship(self, a: int, b: int) -> Optional[Relationship]:
        return self.result.relationship(a, b)

    def provider_of(self, a: int, b: int) -> Optional[int]:
        return self.result.provider_of(a, b)

    def providers(self, asn: int) -> Set[int]:
        return self.result.providers_of_asn(asn)

    def customers(self, asn: int) -> Set[int]:
        return self.result.customers_of_asn(asn)

    def peers(self, asn: int) -> Set[int]:
        return self.result.peers_of_asn(asn)

    @property
    def clique(self) -> List[int]:
        return list(self.result.clique.members)

    def customer_cone(
        self,
        asn: int,
        definition: ConeDefinition = ConeDefinition.PROVIDER_PEER_OBSERVED,
    ) -> Set[int]:
        return self.cones(definition).cone(asn)

    def rank(self, limit: Optional[int] = None) -> List[ASRankEntry]:
        """The AS ranking by customer cone size."""
        return rank_ases(self.result, self.cones(), limit=limit)

    def predict(self, max_origins: Optional[int] = None) -> PredictionReport:
        """Score the inference by re-deriving the corpus paths."""
        return predict_paths(self.result, self.paths.paths,
                             max_origins=max_origins)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def snapshot(self, source: str = "asrank"):
        """Compile this result into a serveable, immutable
        :class:`repro.serve.snapshot.Snapshot` (forces every lazy
        stage; the snapshot's answers are bit-identical to this
        facade's)."""
        from repro.serve.snapshot import Snapshot

        return Snapshot.build(self, source=source)

    def save(self, directory: str, tag: str = "repro") -> Dict[str, str]:
        """Write the CAIDA-format artifacts; returns name → file path."""
        os.makedirs(directory, exist_ok=True)
        as_rel = os.path.join(directory, f"{tag}.as-rel.txt")
        ppdc = os.path.join(directory, f"{tag}.ppdc-ases.txt")
        save_as_rel(as_rel, self.result,
                    comments=[f"inferred from {len(self.paths)} paths"])
        save_ppdc_ases(ppdc, self.cones().cones,
                       comments=["provider/peer observed customer cones"])
        return {"as-rel": as_rel, "ppdc-ases": ppdc}
