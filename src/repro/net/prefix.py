"""IPv4 prefix value type.

A small, hashable, total-ordered prefix type is the currency of the BGP
substrate: route announcements, RIB entries, MRT records, and cone
address-counting all speak :class:`Prefix`.  We implement it directly on
integers rather than wrapping :mod:`ipaddress` because the simulator
creates and compares millions of prefixes and the stdlib objects are an
order of magnitude heavier.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

_MAX32 = 0xFFFFFFFF


class PrefixError(ValueError):
    """Raised for malformed prefix text or out-of-range network/length."""


def _dotted(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def _parse_dotted(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise PrefixError(f"expected dotted quad, got {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise PrefixError(f"non-numeric octet in {text!r}")
        octet = int(part)
        if octet > 255:
            raise PrefixError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


class Prefix:
    """An IPv4 prefix ``network/length`` in canonical (masked) form.

    Instances are immutable, hashable, and ordered first by network
    address then by length, which yields the conventional RIB ordering.
    """

    __slots__ = ("network", "length")

    def __init__(self, network: int, length: int):
        if not 0 <= length <= 32:
            raise PrefixError(f"prefix length {length} out of range")
        if not 0 <= network <= _MAX32:
            raise PrefixError(f"network {network:#x} out of range")
        mask = _MAX32 ^ ((1 << (32 - length)) - 1) if length else 0
        if network & ~mask & _MAX32:
            raise PrefixError(
                f"host bits set: {_dotted(network)}/{length} is not canonical"
            )
        object.__setattr__(self, "network", network)
        object.__setattr__(self, "length", length)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Prefix is immutable")

    def __copy__(self) -> "Prefix":
        return self

    def __deepcopy__(self, memo: dict) -> "Prefix":
        return self

    def __reduce__(self):
        return (Prefix, (self.network, self.length))

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` text into a :class:`Prefix`."""
        text = text.strip()
        if "/" not in text:
            raise PrefixError(f"missing '/': {text!r}")
        net_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise PrefixError(f"non-numeric length in {text!r}")
        return cls(_parse_dotted(net_text), int(len_text))

    @classmethod
    def from_host_count(cls, network: int, hosts: int) -> "Prefix":
        """Smallest prefix at ``network`` covering at least ``hosts`` addresses."""
        if hosts < 1:
            raise PrefixError("need at least one host")
        length = 32
        while length > 0 and (1 << (32 - length)) < hosts:
            length -= 1
        return cls(network & cls._mask_for(length), length)

    @staticmethod
    def _mask_for(length: int) -> int:
        return (_MAX32 ^ ((1 << (32 - length)) - 1)) if length else 0

    @property
    def num_addresses(self) -> int:
        """Number of IPv4 addresses covered by this prefix."""
        return 1 << (32 - self.length)

    @property
    def broadcast(self) -> int:
        """Highest address covered by this prefix."""
        return self.network | ((1 << (32 - self.length)) - 1)

    def contains(self, other: "Prefix") -> bool:
        """True when ``other`` is equal to or more specific than this prefix."""
        if other.length < self.length:
            return False
        return (other.network & Prefix._mask_for(self.length)) == self.network

    def contains_address(self, address: int) -> bool:
        """True when the 32-bit ``address`` falls inside this prefix."""
        return (address & Prefix._mask_for(self.length)) == self.network

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Yield the subdivision of this prefix into ``new_length`` prefixes."""
        if new_length < self.length:
            raise PrefixError("new length shorter than prefix length")
        if new_length > 32:
            raise PrefixError("new length beyond /32")
        step = 1 << (32 - new_length)
        for network in range(self.network, self.broadcast + 1, step):
            yield Prefix(network, new_length)

    def supernet(self, new_length: int) -> "Prefix":
        """The covering prefix of ``new_length`` bits."""
        if new_length > self.length:
            raise PrefixError("supernet must be shorter")
        return Prefix(self.network & Prefix._mask_for(new_length), new_length)

    def __contains__(self, other: object) -> bool:
        if isinstance(other, Prefix):
            return self.contains(other)
        if isinstance(other, int):
            return self.contains_address(other)
        return NotImplemented  # type: ignore[return-value]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self.network == other.network and self.length == other.length

    def __lt__(self, other: "Prefix") -> bool:
        return (self.network, self.length) < (other.network, other.length)

    def __le__(self, other: "Prefix") -> bool:
        return (self.network, self.length) <= (other.network, other.length)

    def __gt__(self, other: "Prefix") -> bool:
        return (self.network, self.length) > (other.network, other.length)

    def __ge__(self, other: "Prefix") -> bool:
        return (self.network, self.length) >= (other.network, other.length)

    def __hash__(self) -> int:
        return hash((self.network, self.length))

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __str__(self) -> str:
        return f"{_dotted(self.network)}/{self.length}"


def summarize_address_space(prefixes: Iterable[Prefix]) -> int:
    """Count distinct IPv4 addresses covered by ``prefixes``.

    Overlapping and duplicate announcements are merged first so each
    address counts once — the unit the paper uses when sizing cones by
    address space.
    """
    spans: List[Tuple[int, int]] = sorted(
        (p.network, p.broadcast) for p in set(prefixes)
    )
    total = 0
    current_start = current_end = -1
    for start, end in spans:
        if start > current_end + 1 or current_end < 0:
            if current_end >= 0:
                total += current_end - current_start + 1
            current_start, current_end = start, end
        elif end > current_end:
            current_end = end
    if current_end >= 0:
        total += current_end - current_start + 1
    return total
