"""Binary prefix trie with longest-prefix match.

The collector uses this to answer "which origin AS announces the most
specific prefix covering this address", and the cone analysis uses it to
deduplicate overlapping announcements.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.net.prefix import Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Maps :class:`Prefix` keys to arbitrary values with LPM lookup."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._find(prefix)
        return node is not None and node.has_value

    @staticmethod
    def _bits(prefix: Prefix) -> Iterator[int]:
        for depth in range(prefix.length):
            yield (prefix.network >> (31 - depth)) & 1

    def _find(self, prefix: Prefix) -> Optional[_Node[V]]:
        node: Optional[_Node[V]] = self._root
        for bit in self._bits(prefix):
            if node is None:
                return None
            node = node.children[bit]
        return node

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value stored at ``prefix``."""
        node = self._root
        for bit in self._bits(prefix):
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def get(self, prefix: Prefix, default: Optional[V] = None) -> Optional[V]:
        """Exact-match lookup."""
        node = self._find(prefix)
        if node is not None and node.has_value:
            return node.value
        return default

    def remove(self, prefix: Prefix) -> bool:
        """Delete the exact entry; returns True when something was removed."""
        node = self._find(prefix)
        if node is None or not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._size -= 1
        return True

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, V]]:
        """Longest-prefix match for a 32-bit address.

        Returns the matching ``(prefix, value)`` pair, or None when no
        entry covers the address.
        """
        node: Optional[_Node[V]] = self._root
        best: Optional[Tuple[int, V]] = None
        network = 0
        for depth in range(33):
            assert node is not None
            if node.has_value:
                best = (depth, node.value)  # type: ignore[assignment]
            if depth == 32:
                break
            bit = (address >> (31 - depth)) & 1
            nxt = node.children[bit]
            if nxt is None:
                break
            network = (network << 1) | bit
            node = nxt
        if best is None:
            return None
        length, value = best
        return Prefix((address >> (32 - length) << (32 - length)) if length else 0, length), value

    def covering(self, prefix: Prefix) -> Optional[Tuple[Prefix, V]]:
        """Most specific stored entry that covers ``prefix`` (including itself)."""
        node: Optional[_Node[V]] = self._root
        best: Optional[Tuple[int, V]] = None
        depth = 0
        for bit in self._bits(prefix):
            assert node is not None
            if node.has_value:
                best = (depth, node.value)  # type: ignore[assignment]
            node = node.children[bit]
            if node is None:
                break
            depth += 1
        else:
            if node is not None and node.has_value:
                best = (prefix.length, node.value)  # type: ignore[assignment]
        if best is None:
            return None
        length, value = best
        mask = ((1 << length) - 1) << (32 - length) if length else 0
        return Prefix(prefix.network & mask, length), value

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Iterate all stored entries in trie (address) order."""
        stack: List[Tuple[_Node[V], int, int]] = [(self._root, 0, 0)]
        while stack:
            node, network, depth = stack.pop()
            if node.has_value:
                yield Prefix(network << (32 - depth) if depth else 0, depth), node.value  # type: ignore[misc]
            # push right child first so left (0-bit) pops first: address order
            right = node.children[1]
            if right is not None:
                stack.append((right, (network << 1) | 1, depth + 1))
            left = node.children[0]
            if left is not None:
                stack.append((left, network << 1, depth + 1))

    def to_dict(self) -> Dict[Prefix, V]:
        """Materialize the trie as a plain dict."""
        return dict(self.items())
