"""IPv4 prefix machinery used throughout the reproduction.

The paper measures customer cones in three units: ASes, announced
prefixes, and IPv4 addresses.  This package provides the prefix type,
prefix allocation to ASes, and a longest-prefix-match trie used when
counting addresses without double-counting overlapping announcements.
"""

from repro.net.prefix import Prefix, PrefixError, summarize_address_space
from repro.net.allocation import PrefixAllocator
from repro.net.trie import PrefixTrie

__all__ = [
    "Prefix",
    "PrefixError",
    "PrefixAllocator",
    "PrefixTrie",
    "summarize_address_space",
]
