"""IPv6 prefix value type.

The IPv6 counterpart of :class:`repro.net.prefix.Prefix`, used by the
dual-plane (congruence) experiments.  Text parsing and formatting
delegate to :mod:`ipaddress` (the `::` compression rules are fiddly);
arithmetic stays on plain integers for speed.
"""

from __future__ import annotations

import ipaddress
from typing import Iterable, Iterator, List, Tuple

from repro.net.prefix import PrefixError

_MAX128 = (1 << 128) - 1


class Prefix6:
    """An IPv6 prefix ``network/length`` in canonical (masked) form."""

    __slots__ = ("network", "length")

    def __init__(self, network: int, length: int):
        if not 0 <= length <= 128:
            raise PrefixError(f"prefix length {length} out of range")
        if not 0 <= network <= _MAX128:
            raise PrefixError("network out of 128-bit range")
        mask = (_MAX128 >> length) ^ _MAX128 if length else 0
        if network & ~mask & _MAX128:
            raise PrefixError(f"host bits set in IPv6 prefix /{length}")
        object.__setattr__(self, "network", network)
        object.__setattr__(self, "length", length)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Prefix6 is immutable")

    def __copy__(self) -> "Prefix6":
        return self

    def __deepcopy__(self, memo: dict) -> "Prefix6":
        return self

    def __reduce__(self):
        return (Prefix6, (self.network, self.length))

    @classmethod
    def parse(cls, text: str) -> "Prefix6":
        try:
            net = ipaddress.IPv6Network(text.strip(), strict=True)
        except (ipaddress.AddressValueError, ipaddress.NetmaskValueError,
                ValueError) as err:
            raise PrefixError(f"bad IPv6 prefix {text!r}: {err}") from err
        return cls(int(net.network_address), net.prefixlen)

    @property
    def num_addresses(self) -> int:
        return 1 << (128 - self.length)

    @property
    def broadcast(self) -> int:
        return self.network | ((1 << (128 - self.length)) - 1)

    def contains(self, other: "Prefix6") -> bool:
        if other.length < self.length:
            return False
        mask = (_MAX128 >> self.length) ^ _MAX128 if self.length else 0
        return (other.network & mask) == self.network

    def subnets(self, new_length: int) -> Iterator["Prefix6"]:
        if new_length < self.length or new_length > 128:
            raise PrefixError("bad subnet length")
        step = 1 << (128 - new_length)
        for network in range(self.network, self.broadcast + 1, step):
            yield Prefix6(network, new_length)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix6):
            return NotImplemented
        return self.network == other.network and self.length == other.length

    def __lt__(self, other: "Prefix6") -> bool:
        return (self.network, self.length) < (other.network, other.length)

    def __le__(self, other: "Prefix6") -> bool:
        return (self.network, self.length) <= (other.network, other.length)

    def __gt__(self, other: "Prefix6") -> bool:
        return (self.network, self.length) > (other.network, other.length)

    def __ge__(self, other: "Prefix6") -> bool:
        return (self.network, self.length) >= (other.network, other.length)

    def __hash__(self) -> int:
        return hash((Prefix6, self.network, self.length))

    def __repr__(self) -> str:
        return f"Prefix6({str(self)!r})"

    def __str__(self) -> str:
        return str(
            ipaddress.IPv6Network((self.network, self.length), strict=True)
        )


class Prefix6Allocator:
    """Sequential, non-overlapping IPv6 allocation from ``2000::/3``.

    Real RIR v6 allocation hands out /32s to networks and /48s to
    sites; the allocator carves aligned blocks of any requested length
    from consecutive /16-sized lanes, so allocations never collide.
    """

    def __init__(self, pool: str = "2001::/16"):
        self._pool = Prefix6.parse(pool)
        self._cursor = self._pool.network
        self._allocated: List[Prefix6] = []

    def allocate(self, length: int) -> Prefix6:
        if not self._pool.length <= length <= 64:
            raise PrefixError(f"allocation length /{length} unsupported")
        size = 1 << (128 - length)
        # align the cursor up to the block size
        aligned = (self._cursor + size - 1) & ~(size - 1)
        if aligned + size - 1 > self._pool.broadcast:
            raise PrefixError("IPv6 pool exhausted")
        prefix = Prefix6(aligned, length)
        self._cursor = aligned + size
        self._allocated.append(prefix)
        return prefix

    @property
    def allocated(self) -> List[Prefix6]:
        return list(self._allocated)
