"""Deterministic prefix allocation to ASes.

The topology generator assigns every AS an address block sized by its
role (large transit networks originate more space than stubs), carving
non-overlapping prefixes out of a configurable pool the way an RIR
would.  Allocations are deterministic given the same request sequence,
which keeps every downstream artifact (RIBs, MRT files, cones)
reproducible from a seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.prefix import Prefix, PrefixError

# Unit-test-friendly default pool: 1.0.0.0/8 .. 223.0.0.0/8 minus the
# conventional private/reserved /8s, mirroring the unicast IPv4 space.
_RESERVED_FIRST_OCTETS = {0, 10, 127}


class PrefixAllocator:
    """Carves non-overlapping prefixes from a pool of /8 blocks.

    The allocator hands out prefixes in address order using a simple
    buddy scheme: each /8 is split on demand into aligned blocks of the
    requested length.  ``allocate`` never returns overlapping prefixes.
    """

    def __init__(self, first_octets: Optional[List[int]] = None):
        if first_octets is None:
            first_octets = [o for o in range(1, 224) if o not in _RESERVED_FIRST_OCTETS]
        if not first_octets:
            raise PrefixError("allocator needs at least one /8")
        # free lists keyed by prefix length; seed with the /8 pool
        self._free: Dict[int, List[Prefix]] = {8: []}
        for octet in sorted(first_octets, reverse=True):
            if not 0 <= octet <= 223:
                raise PrefixError(f"first octet {octet} outside unicast space")
            self._free[8].append(Prefix(octet << 24, 8))
        self._allocated: List[Prefix] = []

    @property
    def allocated(self) -> List[Prefix]:
        """All prefixes handed out so far, in allocation order."""
        return list(self._allocated)

    def remaining_addresses(self) -> int:
        """Addresses still available in the pool."""
        return sum(
            prefix.num_addresses
            for prefixes in self._free.values()
            for prefix in prefixes
        )

    def allocate(self, length: int) -> Prefix:
        """Return one unused prefix of exactly ``length`` bits.

        Raises :class:`PrefixError` when the pool is exhausted.
        """
        if not 8 <= length <= 32:
            raise PrefixError(f"allocation length /{length} outside /8../32")
        # find the longest free block that can satisfy the request
        source_length = length
        while source_length >= 8:
            if self._free.get(source_length):
                break
            source_length -= 1
        else:
            raise PrefixError(f"pool exhausted: no space for a /{length}")
        block = self._free[source_length].pop()
        # split down to the requested size, returning the low half and
        # keeping the high halves on the free lists
        while block.length < length:
            low, high = block.subnets(block.length + 1)
            self._free.setdefault(high.length, []).append(high)
            block = low
        self._allocated.append(block)
        return block

    def allocate_many(self, length: int, count: int) -> List[Prefix]:
        """Allocate ``count`` prefixes of the same length."""
        return [self.allocate(length) for _ in range(count)]
