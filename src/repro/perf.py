"""Pipeline instrumentation: nested stage timers and counters.

Every hot stage of the pipeline (generate → collect → sanitize →
infer → cones) reports into a :class:`PerfRecorder`, so any run can be
asked for a per-stage cost profile instead of hand-rolling
``time.perf_counter()`` around call sites.  The API is deliberately
tiny:

    >>> from repro import perf
    >>> rec = perf.PerfRecorder()
    >>> with perf.use_recorder(rec):
    ...     with perf.stage("infer"):
    ...         with perf.stage("fold"):
    ...             pass
    ...         perf.counter("links", 42)
    >>> rec.flat()["infer/fold"] >= 0.0
    True

Stages nest: entering ``stage("fold")`` inside ``stage("infer")``
accumulates time under ``infer/fold``.  Re-entering a stage name at the
same nesting level accumulates into the same node (``calls`` counts the
re-entries), which is how the four fold passes of one inference run
show up as a single ``fold`` row.  Re-entering the *currently open*
stage by the same name is a passthrough (no duplicate child, no
double-counted time) — that is how the :class:`repro.asrank.ASRank`
facade attributes work to ``asrank/infer`` and ``asrank/cones`` while
the engines underneath keep their own ``infer``/``cones`` top stages
for direct callers.

A module-level default recorder collects everything when the caller
does not install one; ``use_recorder`` swaps it for a scoped recorder
(benchmarks use this to isolate one pipeline run per measurement).
The recorder is process-local: multiprocessing workers record into
their own copy, which is intentional — the parent's profile then shows
the wall-clock cost of the fan-out, not the summed worker CPU.

Thread safety: mutations (``stage`` bookkeeping, ``counter``,
``add_seconds``) are guarded by a per-recorder lock and the stage
*stack* is thread-local (each thread nests independently under the
shared root), so the query service's concurrent handlers can deposit
per-route timings while ``snapshot()`` — which returns fully detached
plain dicts — reads a consistent tree without mutating it.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class StageStats:
    """One node of the stage tree: accumulated seconds + counters."""

    __slots__ = ("name", "seconds", "calls", "counters", "children")

    def __init__(self, name: str):
        self.name = name
        self.seconds: float = 0.0
        self.calls: int = 0
        self.counters: Dict[str, float] = {}
        self.children: Dict[str, "StageStats"] = {}

    def child(self, name: str) -> "StageStats":
        node = self.children.get(name)
        if node is None:
            node = StageStats(name)
            self.children[name] = node
        return node

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view (JSON-serializable)."""
        out: Dict[str, object] = {
            "seconds": self.seconds,
            "calls": self.calls,
        }
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = {
                name: node.snapshot() for name, node in self.children.items()
            }
        return out


class PerfRecorder:
    """Collects a tree of stage timings plus named counters.

    One recorder per pipeline run is still the intended shape, but the
    recorder is safe to share across threads/asyncio handlers: the
    stage stack is per-thread (every thread nests under the shared
    root) and all structural mutation happens under ``_lock``.
    """

    def __init__(self) -> None:
        self._root = StageStats("")
        self._lock = threading.Lock()
        self._local = threading.local()
        # bumped by reset(): threads detect a stale stack and rebuild
        self._generation = 0

    @property
    def _stack(self) -> List[StageStats]:
        state = getattr(self._local, "state", None)
        if state is None or state[0] != self._generation:
            state = (self._generation, [self._root])
            self._local.state = state
        return state[1]

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[StageStats]:
        """Time a named stage; nests under the innermost open stage.

        Re-entering the *innermost open* stage by the same name is a
        passthrough: a facade that opens ``asrank``/``infer`` around an
        engine that opens ``infer`` itself records one node, not an
        ``infer/infer`` duplicate with double-counted seconds.
        """
        stack = self._stack
        if len(stack) > 1 and stack[-1].name == name:
            yield stack[-1]
            return
        with self._lock:
            node = stack[-1].child(name)
            node.calls += 1
        stack.append(node)
        start = time.perf_counter()
        try:
            yield node
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                node.seconds += elapsed
            stack.pop()

    def counter(self, name: str, value: float = 1) -> None:
        """Accumulate a named counter on the innermost open stage."""
        node = self._stack[-1]
        with self._lock:
            node.counters[name] = node.counters.get(name, 0) + value

    def add_seconds(self, name: str, seconds: float) -> None:
        """Accumulate externally measured time under the open stage.

        For substages whose phases interleave inside a loop (e.g. the
        collector's propagate/paths/noise/rib phases within one origin
        block): the caller measures each slice itself and deposits the
        total here, avoiding a context-manager entry per slice.
        """
        with self._lock:
            node = self._stack[-1].child(name)
            node.calls += 1
            node.seconds += seconds

    def reset(self) -> None:
        with self._lock:
            self._root = StageStats("")
            self._generation += 1
            self._local.state = (self._generation, [self._root])

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The stage tree as nested plain dicts (top-level stages).

        The returned structure shares nothing with the live tree, so
        concurrent handlers (the server's ``/metrics`` endpoint) can
        read it without racing recorders still mutating stages.
        """
        with self._lock:
            children = self._root.snapshot().get("children", {})
        assert isinstance(children, dict)
        return children

    def flat(self, sep: str = "/") -> Dict[str, float]:
        """``"infer/fold" -> seconds`` for every stage in the tree."""
        out: Dict[str, float] = {}

        def walk(node: StageStats, prefix: str) -> None:
            for name, child in node.children.items():
                path = f"{prefix}{sep}{name}" if prefix else name
                out[path] = child.seconds
                walk(child, path)

        with self._lock:
            walk(self._root, "")
        return out

    def counters(self, sep: str = "/") -> Dict[str, float]:
        """``"collect/origins" -> value`` for every recorded counter."""
        out: Dict[str, float] = {}

        def walk(node: StageStats, prefix: str) -> None:
            for cname, value in node.counters.items():
                path = f"{prefix}{sep}{cname}" if prefix else cname
                out[path] = value
            for name, child in node.children.items():
                walk(child, f"{prefix}{sep}{name}" if prefix else name)

        with self._lock:
            walk(self._root, "")
        return out

    def report_lines(self) -> List[str]:
        """Human-readable indented profile."""
        lines: List[str] = []

        def walk(node: StageStats, depth: int) -> None:
            for name, child in node.children.items():
                extras = ""
                if child.calls > 1:
                    extras += f"  x{child.calls}"
                for cname, value in child.counters.items():
                    extras += f"  {cname}={value:g}"
                lines.append(
                    f"{'  ' * depth}{name:<24}{child.seconds:>10.4f}s{extras}"
                )
                walk(child, depth + 1)

        with self._lock:
            walk(self._root, 0)
        return lines


# ---------------------------------------------------------------------------
# module-level default recorder
# ---------------------------------------------------------------------------

_recorder = PerfRecorder()


def get_recorder() -> PerfRecorder:
    """The recorder currently collecting pipeline stages."""
    return _recorder


def set_recorder(recorder: PerfRecorder) -> PerfRecorder:
    """Install ``recorder`` globally; returns the previous one."""
    global _recorder
    previous = _recorder
    _recorder = recorder
    return previous


@contextmanager
def use_recorder(recorder: PerfRecorder) -> Iterator[PerfRecorder]:
    """Scope ``recorder`` as the active one, restoring on exit."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


def stage(name: str):
    """``with perf.stage("infer"): ...`` on the active recorder."""
    return _recorder.stage(name)


def counter(name: str, value: float = 1) -> None:
    _recorder.counter(name, value)


def add_seconds(name: str, seconds: float) -> None:
    _recorder.add_seconds(name, seconds)


def reset() -> None:
    _recorder.reset()


def snapshot() -> Dict[str, object]:
    """Detached plain-dict view of the active recorder (non-mutating)."""
    return _recorder.snapshot()


def flat(sep: str = "/") -> Dict[str, float]:
    return _recorder.flat(sep)


def report_lines() -> List[str]:
    return _recorder.report_lines()
