"""MRT TABLE_DUMP_V2 / BGP4MP parser.

Strict, validating parser for the records the writer emits — and for
the subset of real RouteViews dumps the paper consumes.  Unknown MRT
record types are skipped (real dumps interleave types); malformed
framing raises :class:`MrtFormatError`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import IO, Iterator, List, Optional, Tuple

from repro.mrt import constants as c
from repro.net.prefix import Prefix
from repro.net.prefix6 import Prefix6


@dataclass(frozen=True)
class RibRecord:
    """One (prefix, peer) RIB row decoded from a TABLE_DUMP_V2 record."""

    prefix: Prefix
    peer_asn: int
    as_path: Tuple[int, ...]
    communities: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class UpdateRecord:
    """A decoded BGP4MP UPDATE."""

    peer_asn: int
    local_asn: int
    as_path: Tuple[int, ...]
    announced: Tuple[Prefix, ...]
    communities: Tuple[Tuple[int, int], ...]
    withdrawn: Tuple[Prefix, ...] = ()


def _read_exact(stream: IO[bytes], n: int) -> bytes:
    data = stream.read(n)
    if len(data) != n:
        raise c.MrtFormatError(f"truncated record: wanted {n}, got {len(data)}")
    return data


def decode_as_path(blob: bytes, asn_size: int = 4) -> Tuple[int, ...]:
    """Decode an AS_PATH attribute value (sequences and sets)."""
    fmt_char = "I" if asn_size == 4 else "H"
    path: List[int] = []
    offset = 0
    while offset < len(blob):
        if offset + 2 > len(blob):
            raise c.MrtFormatError("truncated AS_PATH segment header")
        seg_type, count = blob[offset], blob[offset + 1]
        offset += 2
        need = count * asn_size
        if offset + need > len(blob):
            raise c.MrtFormatError("truncated AS_PATH segment body")
        asns = struct.unpack(f"!{count}{fmt_char}", blob[offset:offset + need])
        offset += need
        if seg_type == c.SEGMENT_AS_SEQUENCE:
            path.extend(asns)
        elif seg_type == c.SEGMENT_AS_SET:
            # sets are unordered; keep deterministic order
            path.extend(sorted(asns))
        else:
            raise c.MrtFormatError(f"unknown AS_PATH segment type {seg_type}")
    return tuple(path)


def merge_as4_path(
    as_path: Tuple[int, ...], as4_path: Tuple[int, ...]
) -> Tuple[int, ...]:
    """RFC 6793 reconstruction: the AS4_PATH replaces the tail of the
    2-byte AS_PATH (which carries AS_TRANS placeholders)."""
    if not as4_path or len(as4_path) > len(as_path):
        return as_path
    keep = len(as_path) - len(as4_path)
    return as_path[:keep] + as4_path


def decode_attributes(
    blob: bytes, asn_size: int = 4
) -> Tuple[Tuple[int, ...], Tuple[Tuple[int, int], ...]]:
    """Extract (as_path, communities) from a BGP attribute blob.

    For 2-byte sessions (``asn_size=2``), an AS4_PATH attribute — if
    present — is merged into the path, recovering the true 4-byte ASNs.
    """
    as_path: Tuple[int, ...] = ()
    as4_path: Tuple[int, ...] = ()
    communities: Tuple[Tuple[int, int], ...] = ()
    offset = 0
    while offset < len(blob):
        if offset + 2 > len(blob):
            raise c.MrtFormatError("truncated attribute header")
        flags, type_code = blob[offset], blob[offset + 1]
        offset += 2
        if flags & c.FLAG_EXTENDED_LENGTH:
            if offset + 2 > len(blob):
                raise c.MrtFormatError("truncated extended length")
            (length,) = struct.unpack("!H", blob[offset:offset + 2])
            offset += 2
        else:
            if offset + 1 > len(blob):
                raise c.MrtFormatError("truncated attribute length")
            length = blob[offset]
            offset += 1
        if offset + length > len(blob):
            raise c.MrtFormatError("attribute overruns blob")
        value = blob[offset:offset + length]
        offset += length
        if type_code == c.ATTR_AS_PATH:
            as_path = decode_as_path(value, asn_size)
        elif type_code == c.ATTR_AS4_PATH:
            as4_path = decode_as_path(value, 4)
        elif type_code == c.ATTR_COMMUNITIES:
            if length % 4:
                raise c.MrtFormatError("COMMUNITIES length not multiple of 4")
            communities = tuple(
                struct.unpack("!HH", value[i:i + 4]) for i in range(0, length, 4)
            )
    if asn_size == 2 and as4_path:
        as_path = merge_as4_path(as_path, as4_path)
    return as_path, communities


def _decode_nlri_prefix(
    blob: bytes, offset: int, address_bytes: int = 4
) -> Tuple[object, int]:
    length = blob[offset]
    offset += 1
    octets = (length + 7) // 8
    if offset + octets > len(blob):
        raise c.MrtFormatError("truncated NLRI prefix")
    network = int.from_bytes(
        blob[offset:offset + octets].ljust(address_bytes, b"\0"), "big"
    )
    offset += octets
    # mask stray host bits (real dumps occasionally carry them)
    bits = address_bytes * 8
    full = (1 << bits) - 1
    if length:
        network &= (full >> length) ^ full
    else:
        network = 0
    if address_bytes == 16:
        return Prefix6(network, length), offset
    return Prefix(network, length), offset


class MrtReader:
    """Iterates decoded records from an MRT byte stream."""

    def __init__(self, stream: IO[bytes]):
        self._stream = stream
        self._peer_asns: List[int] = []

    def __iter__(self) -> Iterator[object]:
        return self.iter_records()

    def iter_records(self) -> Iterator[object]:
        """Yield decoded records one at a time as the stream is read.

        Memory stays bounded by the largest single MRT record: only one
        record body is held at a time, never the whole dump.  The eager
        helpers (:func:`read_rib_dump` et al.) drain this same generator,
        so both paths decode identical record sequences.
        """
        while True:
            header = self._stream.read(c.MRT_COMMON_HEADER_LEN)
            if not header:
                return
            if len(header) != c.MRT_COMMON_HEADER_LEN:
                raise c.MrtFormatError("truncated MRT common header")
            _ts, mrt_type, subtype, length = struct.unpack("!IHHI", header)
            body = _read_exact(self._stream, length)
            if mrt_type == c.TYPE_TABLE_DUMP:
                if subtype == c.SUBTYPE_AFI_IPV4:
                    yield self._parse_table_dump_v1(body)
            elif mrt_type == c.TYPE_TABLE_DUMP_V2:
                if subtype == c.SUBTYPE_PEER_INDEX_TABLE:
                    self._parse_peer_index(body)
                elif subtype == c.SUBTYPE_RIB_IPV4_UNICAST:
                    yield from self._parse_rib(body, address_bytes=4)
                elif subtype == c.SUBTYPE_RIB_IPV6_UNICAST:
                    yield from self._parse_rib(body, address_bytes=16)
                # other TABLE_DUMP_V2 subtypes skipped
            elif mrt_type == c.TYPE_BGP4MP:
                if subtype == c.SUBTYPE_BGP4MP_MESSAGE_AS4:
                    record = self._parse_bgp4mp(body)
                    if record is not None:
                        yield record
            # unknown MRT types are skipped silently, as real tooling does

    # ------------------------------------------------------------------

    def _parse_table_dump_v1(self, body: bytes) -> RibRecord:
        """Legacy TABLE_DUMP: fixed header, 2-byte peer AS, then attrs."""
        # view(2) seq(2) prefix(4) plen(1) status(1) time(4) peer_ip(4)
        # peer_as(2) attr_len(2) = 22 bytes
        if len(body) < 22:
            raise c.MrtFormatError("short TABLE_DUMP record")
        network, plen = struct.unpack("!IB", body[4:9])
        if plen:
            network &= (0xFFFFFFFF >> plen) ^ 0xFFFFFFFF
        else:
            network = 0
        (peer_asn,) = struct.unpack("!H", body[18:20])
        (attr_len,) = struct.unpack("!H", body[20:22])
        if 22 + attr_len > len(body):
            raise c.MrtFormatError("TABLE_DUMP attributes overrun")
        as_path, communities = decode_attributes(
            body[22:22 + attr_len], asn_size=2
        )
        return RibRecord(
            prefix=Prefix(network, plen),
            peer_asn=peer_asn,
            as_path=as_path,
            communities=communities,
        )

    def _parse_peer_index(self, body: bytes) -> None:
        if len(body) < 8:
            raise c.MrtFormatError("short PEER_INDEX_TABLE")
        (name_len,) = struct.unpack("!H", body[4:6])
        offset = 6 + name_len
        if offset + 2 > len(body):
            raise c.MrtFormatError("truncated PEER_INDEX_TABLE header")
        (peer_count,) = struct.unpack("!H", body[offset:offset + 2])
        offset += 2
        peers: List[int] = []
        for _ in range(peer_count):
            if offset >= len(body):
                raise c.MrtFormatError("truncated peer entry")
            peer_type = body[offset]
            offset += 1
            ip_len = 16 if peer_type & c.PEER_TYPE_IPV6 else 4
            as_len = 4 if peer_type & c.PEER_TYPE_AS32 else 2
            need = 4 + ip_len + as_len
            if offset + need > len(body):
                raise c.MrtFormatError("truncated peer entry body")
            offset += 4 + ip_len  # BGP ID + address
            asn = int.from_bytes(body[offset:offset + as_len], "big")
            offset += as_len
            peers.append(asn)
        self._peer_asns = peers

    def _parse_rib(
        self, body: bytes, address_bytes: int = 4
    ) -> Iterator[RibRecord]:
        if not self._peer_asns:
            raise c.MrtFormatError("RIB record before PEER_INDEX_TABLE")
        if len(body) < 5:
            raise c.MrtFormatError("short RIB record")
        offset = 4  # sequence number
        prefix, offset = _decode_nlri_prefix(body, offset, address_bytes)
        if offset + 2 > len(body):
            raise c.MrtFormatError("truncated RIB entry count")
        (entry_count,) = struct.unpack("!H", body[offset:offset + 2])
        offset += 2
        for _ in range(entry_count):
            if offset + 8 > len(body):
                raise c.MrtFormatError("truncated RIB entry header")
            peer_idx, _orig_time, attr_len = struct.unpack(
                "!HIH", body[offset:offset + 8]
            )
            offset += 8
            if offset + attr_len > len(body):
                raise c.MrtFormatError("RIB entry attributes overrun")
            if peer_idx >= len(self._peer_asns):
                raise c.MrtFormatError(f"peer index {peer_idx} out of range")
            as_path, communities = decode_attributes(
                body[offset:offset + attr_len]
            )
            offset += attr_len
            yield RibRecord(
                prefix=prefix,
                peer_asn=self._peer_asns[peer_idx],
                as_path=as_path,
                communities=communities,
            )

    def _parse_bgp4mp(self, body: bytes) -> Optional[UpdateRecord]:
        if len(body) < 20:
            raise c.MrtFormatError("short BGP4MP record")
        peer_asn, local_asn, _ifindex, afi = struct.unpack("!IIHH", body[:12])
        if afi != 1:
            return None  # IPv6 session, not modeled
        offset = 12 + 8  # two IPv4 addresses
        message = body[offset:]
        if len(message) < 19 or message[:16] != c.BGP_MARKER:
            raise c.MrtFormatError("bad BGP message framing")
        msg_len, msg_type = struct.unpack("!HB", message[16:19])
        if msg_len != len(message):
            raise c.MrtFormatError("BGP message length mismatch")
        if msg_type != c.BGP_MSG_UPDATE:
            return None
        body = message[19:]
        if len(body) < 2:
            raise c.MrtFormatError("truncated UPDATE withdrawn length")
        (withdrawn_len,) = struct.unpack("!H", body[:2])
        offset = 2
        withdrawn_end = offset + withdrawn_len
        if withdrawn_end + 2 > len(body):
            raise c.MrtFormatError("UPDATE withdrawn routes overrun")
        withdrawn: List[Prefix] = []
        while offset < withdrawn_end:
            prefix, offset = _decode_nlri_prefix(body, offset)
            withdrawn.append(prefix)
        if offset != withdrawn_end:
            raise c.MrtFormatError("UPDATE withdrawn routes misframed")
        (attr_len,) = struct.unpack("!H", body[offset:offset + 2])
        offset += 2
        if offset + attr_len > len(body):
            raise c.MrtFormatError("UPDATE attributes overrun")
        as_path, communities = decode_attributes(body[offset:offset + attr_len])
        offset += attr_len
        announced: List[Prefix] = []
        while offset < len(body):
            prefix, offset = _decode_nlri_prefix(body, offset)
            announced.append(prefix)
        return UpdateRecord(
            peer_asn=peer_asn,
            local_asn=local_asn,
            as_path=as_path,
            announced=tuple(announced),
            communities=communities,
            withdrawn=tuple(withdrawn),
        )


#: default read-ahead for the streaming file helpers (64 KiB)
DEFAULT_BUFFER_SIZE = 1 << 16


def read_rib_dump(path: str) -> List[RibRecord]:
    """Parse a TABLE_DUMP_V2 file into RIB rows."""
    return list(iter_rib_dump(path))


def iter_rib_dump(
    path: str, buffer_size: int = DEFAULT_BUFFER_SIZE
) -> Iterator[RibRecord]:
    """Stream RIB rows from a TABLE_DUMP_V2 file.

    Unlike :func:`read_rib_dump` this never materializes the full row
    list; the file is read through a bounded ``buffer_size`` buffer and
    rows are yielded as they decode.
    """
    # buffering=1 means line buffering (invalid for binary streams)
    with open(path, "rb", buffering=max(2, buffer_size)) as stream:
        for record in MrtReader(stream).iter_records():
            if isinstance(record, RibRecord):
                yield record
