"""Update-stream dumps: the other half of a collector archive.

RouteViews publishes both periodic RIB snapshots (``TABLE_DUMP_V2``)
and continuous ``BGP4MP`` update streams.  A consumer can rebuild a
path corpus from either.  This module serializes a collected RIB as a
burst of UPDATE messages — what a collector writes right after a
session reset — and rebuilds RIB rows from a parsed update stream,
last-announcement-wins, as real tooling does.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.mrt.reader import (
    DEFAULT_BUFFER_SIZE,
    MrtReader,
    RibRecord,
    UpdateRecord,
)
from repro.mrt.writer import MrtWriter
from repro.net.prefix import Prefix

#: collector-side ASN stamped as "local AS" on emitted updates
COLLECTOR_ASN = 64700

# keep NLRI bundles small, as real updates are MTU-bounded
_MAX_PREFIXES_PER_UPDATE = 24


def write_update_dump(
    path: str,
    rib: Iterable,
    timestamp: int = 0,
    local_asn: int = COLLECTOR_ASN,
) -> int:
    """Serialize RIB rows (``repro.bgp.RibEntry``) as BGP4MP updates.

    Entries sharing (peer, path, communities) are packed into common
    UPDATE messages.  Returns the number of UPDATE records written.
    """
    grouped: Dict[Tuple[int, Tuple[int, ...], Tuple[Tuple[int, int], ...]],
                  List[Prefix]] = {}
    for entry in rib:
        key = (entry.vp, tuple(entry.path), tuple(entry.communities))
        grouped.setdefault(key, []).append(entry.prefix)

    written = 0
    with open(path, "wb") as stream:
        writer = MrtWriter(stream, timestamp=timestamp)
        for (peer, as_path, communities), prefixes in sorted(
            grouped.items()
        ):
            prefixes.sort()
            for start in range(0, len(prefixes), _MAX_PREFIXES_PER_UPDATE):
                writer.write_bgp4mp_update(
                    peer_asn=peer,
                    local_asn=local_asn,
                    as_path=as_path,
                    announced=prefixes[start:start + _MAX_PREFIXES_PER_UPDATE],
                    communities=communities,
                )
                written += 1
    return written


def read_update_dump(path: str) -> List[UpdateRecord]:
    """Parse every UPDATE record from a BGP4MP file."""
    return list(iter_update_dump(path))


def iter_update_dump(
    path: str, buffer_size: int = DEFAULT_BUFFER_SIZE
) -> Iterator[UpdateRecord]:
    """Stream UPDATE records from a BGP4MP file with a bounded buffer.

    The streaming twin of :func:`read_update_dump`; useful for feeding
    :func:`rib_from_updates` without holding the whole dump in memory.
    """
    # buffering=1 means line buffering (invalid for binary streams)
    with open(path, "rb", buffering=max(2, buffer_size)) as stream:
        for record in MrtReader(stream).iter_records():
            if isinstance(record, UpdateRecord):
                yield record


def iter_update_batches(
    path: str,
    batch_size: int = 256,
    buffer_size: int = DEFAULT_BUFFER_SIZE,
) -> Iterator[List[UpdateRecord]]:
    """Stream UPDATE records grouped into apply-sized batches.

    The unit the live-ingest layer consumes: each batch is applied to
    the live RIB table atomically, then the table may be republished.
    The final batch may be short; an empty file yields nothing.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    batch: List[UpdateRecord] = []
    for record in iter_update_dump(path, buffer_size=buffer_size):
        batch.append(record)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def follow_update_batches(
    path: str,
    batch_size: int = 256,
    poll_interval: float = 0.5,
    idle_limit: Optional[float] = 5.0,
    buffer_size: int = DEFAULT_BUFFER_SIZE,
) -> Iterator[List[UpdateRecord]]:
    """Tail a growing BGP4MP file, yielding batches as records land.

    ``tail -f`` for update dumps: re-reads the file and skips the
    records already consumed, so it tolerates writers that append whole
    MRT records atomically (as :class:`~repro.mrt.writer.MrtWriter`
    does).  Re-decoding from the start keeps the implementation
    trivially correct at smoke/test scale; a byte-offset cursor is the
    obvious upgrade when dumps outgrow that.  Stops after
    ``idle_limit`` seconds without new records (``None`` tails
    forever).
    """
    import time as _time

    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    consumed = 0
    idle_since: Optional[float] = None
    while True:
        fresh: List[UpdateRecord] = []
        seen = 0
        for record in iter_update_dump(path, buffer_size=buffer_size):
            seen += 1
            if seen > consumed:
                fresh.append(record)
        if fresh:
            consumed += len(fresh)
            idle_since = None
            for start in range(0, len(fresh), batch_size):
                yield fresh[start:start + batch_size]
            continue
        now = _time.monotonic()
        if idle_since is None:
            idle_since = now
        elif idle_limit is not None and now - idle_since >= idle_limit:
            return
        _time.sleep(poll_interval)


def rib_from_updates(
    updates: Iterable[UpdateRecord],
    base: Optional[Iterable[RibRecord]] = None,
) -> List[RibRecord]:
    """Rebuild per-(prefix, peer) RIB rows from an update stream.

    Later announcements for the same (prefix, peer) replace earlier
    ones, and a withdrawal deletes the (prefix, peer) entry — the
    stream-processing rules every MRT consumer implements.  Within one
    UPDATE, withdrawals apply before announcements (RFC 4271: a prefix
    in both fields is a re-announcement, not a removal).

    ``base`` seeds the table with RIB rows from a snapshot taken before
    the stream, so announce/withdraw messages update and delete
    snapshot state instead of duplicating it.
    """
    table: Dict[Tuple[Prefix, int], RibRecord] = {}
    for row in base or ():
        table[(row.prefix, row.peer_asn)] = row
    for update in updates:
        for prefix in update.withdrawn:
            table.pop((prefix, update.peer_asn), None)
        for prefix in update.announced:
            table[(prefix, update.peer_asn)] = RibRecord(
                prefix=prefix,
                peer_asn=update.peer_asn,
                as_path=update.as_path,
                communities=update.communities,
            )
    return [table[key] for key in sorted(table, key=lambda k: (k[0], k[1]))]
