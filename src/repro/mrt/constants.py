"""Wire-format constants from RFC 6396 (MRT) and RFC 4271 (BGP-4)."""

from __future__ import annotations


class MrtFormatError(ValueError):
    """Raised on malformed MRT bytes."""


# MRT record types
TYPE_TABLE_DUMP = 12  # legacy, one record per (prefix, peer); 2-byte ASNs
TYPE_TABLE_DUMP_V2 = 13
TYPE_BGP4MP = 16

# TABLE_DUMP subtypes
SUBTYPE_AFI_IPV4 = 1

# TABLE_DUMP_V2 subtypes
SUBTYPE_PEER_INDEX_TABLE = 1
SUBTYPE_RIB_IPV4_UNICAST = 2
SUBTYPE_RIB_IPV6_UNICAST = 4

# BGP4MP subtypes
SUBTYPE_BGP4MP_MESSAGE_AS4 = 4

# peer-entry type bits (PEER_INDEX_TABLE)
PEER_TYPE_AS32 = 0x02  # peer AS number is 4 bytes
PEER_TYPE_IPV6 = 0x01  # peer address is IPv6 (we only emit IPv4)

# BGP path attribute type codes
ATTR_ORIGIN = 1
ATTR_AS_PATH = 2
ATTR_NEXT_HOP = 3
ATTR_COMMUNITIES = 8
ATTR_AS4_PATH = 17  # RFC 6793: 4-byte path carried across 2-byte sessions

# the 2-byte stand-in for a 4-byte ASN (RFC 6793)
AS_TRANS = 23456

# BGP path attribute flags
FLAG_OPTIONAL = 0x80
FLAG_TRANSITIVE = 0x40
FLAG_EXTENDED_LENGTH = 0x10

# AS_PATH segment types
SEGMENT_AS_SET = 1
SEGMENT_AS_SEQUENCE = 2

# BGP message types
BGP_MSG_UPDATE = 2

# the all-ones BGP message marker
BGP_MARKER = b"\xff" * 16

# ORIGIN attribute values
ORIGIN_IGP = 0

MRT_COMMON_HEADER_LEN = 12
