"""MRT TABLE_DUMP_V2 / BGP4MP binary writer.

Emits byte-exact RFC 6396 records: a ``PEER_INDEX_TABLE`` describing
the collector's peers, followed by one ``RIB_IPV4_UNICAST`` record per
prefix carrying each peer's path attributes (ORIGIN, AS_PATH as AS4
sequences, NEXT_HOP, and optional COMMUNITIES).
"""

from __future__ import annotations

import struct
from typing import Dict, IO, Iterable, List, Optional, Sequence, Tuple

from repro.graph.index import DenseIndex
from repro.mrt import constants as c
from repro.net.prefix import Prefix
from repro.net.prefix6 import Prefix6


def _attr(flags: int, type_code: int, value: bytes) -> bytes:
    """Encode one BGP path attribute, using extended length when needed."""
    if len(value) > 255:
        flags |= c.FLAG_EXTENDED_LENGTH
        return struct.pack("!BBH", flags, type_code, len(value)) + value
    return struct.pack("!BBB", flags, type_code, len(value)) + value


def encode_as_path(path: Sequence[int], asn_size: int = 4) -> bytes:
    """AS_PATH attribute value: AS_SEQUENCE segments.

    ``asn_size=2`` encodes the legacy 2-byte form; 4-byte ASNs are
    substituted with AS_TRANS, as a 2-byte speaker would transmit them.
    """
    fmt = "!I" if asn_size == 4 else "!H"
    chunks: List[bytes] = []
    remaining = list(path)
    while remaining:
        segment, remaining = remaining[:255], remaining[255:]
        chunks.append(struct.pack("!BB", c.SEGMENT_AS_SEQUENCE, len(segment)))
        for asn in segment:
            if asn_size == 2 and asn > 0xFFFF:
                asn = c.AS_TRANS
            chunks.append(struct.pack(fmt, asn))
    return b"".join(chunks)


def encode_attributes(
    as_path: Sequence[int],
    next_hop: int = 0,
    communities: Sequence[Tuple[int, int]] = (),
    asn_size: int = 4,
) -> bytes:
    """The BGP path-attribute blob for one RIB entry.

    With ``asn_size=2`` (legacy TABLE_DUMP), an AS4_PATH attribute is
    added whenever the path contains 4-byte ASNs, per RFC 6793.
    """
    parts = [
        _attr(c.FLAG_TRANSITIVE, c.ATTR_ORIGIN, bytes([c.ORIGIN_IGP])),
        _attr(c.FLAG_TRANSITIVE, c.ATTR_AS_PATH,
              encode_as_path(as_path, asn_size)),
        _attr(c.FLAG_TRANSITIVE, c.ATTR_NEXT_HOP, struct.pack("!I", next_hop)),
    ]
    if asn_size == 2 and any(asn > 0xFFFF for asn in as_path):
        parts.append(
            _attr(
                c.FLAG_OPTIONAL | c.FLAG_TRANSITIVE,
                c.ATTR_AS4_PATH,
                encode_as_path(as_path, 4),
            )
        )
    if communities:
        value = b"".join(
            struct.pack("!HH", asn & 0xFFFF, data & 0xFFFF)
            for asn, data in communities
        )
        parts.append(
            _attr(c.FLAG_OPTIONAL | c.FLAG_TRANSITIVE, c.ATTR_COMMUNITIES, value)
        )
    return b"".join(parts)


class MrtWriter:
    """Streams MRT records to a binary file object."""

    def __init__(self, stream: IO[bytes], timestamp: int = 0):
        self._stream = stream
        self._timestamp = timestamp
        self._peer_index: Dict[int, int] = {}
        self._sequence = 0

    def _record(self, mrt_type: int, subtype: int, body: bytes) -> None:
        header = struct.pack(
            "!IHHI", self._timestamp, mrt_type, subtype, len(body)
        )
        self._stream.write(header)
        self._stream.write(body)

    # ------------------------------------------------------------------
    # TABLE_DUMP_V2
    # ------------------------------------------------------------------

    def write_peer_index_table(
        self,
        peer_asns: Sequence[int],
        collector_id: int = 0x0A000001,
        view_name: str = "repro",
    ) -> None:
        """Emit the PEER_INDEX_TABLE; must precede any RIB records."""
        # table position is the contract here, so the index preserves
        # the caller's peer order rather than sorting
        self._peer_index = DenseIndex.from_ordered(peer_asns).ids
        name = view_name.encode("ascii")
        body = [struct.pack("!I", collector_id), struct.pack("!H", len(name)), name]
        body.append(struct.pack("!H", len(peer_asns)))
        for i, asn in enumerate(peer_asns):
            peer_ip = 0x0A000100 + i  # synthetic 10.0.1.x addresses
            body.append(
                struct.pack(
                    "!BIII", c.PEER_TYPE_AS32, peer_ip, peer_ip, asn
                )
            )
        self._record(
            c.TYPE_TABLE_DUMP_V2, c.SUBTYPE_PEER_INDEX_TABLE, b"".join(body)
        )

    def write_rib_entry(
        self,
        prefix,
        entries: Sequence[Tuple[int, Sequence[int], Sequence[Tuple[int, int]]]],
    ) -> None:
        """Emit one RIB_IPV4_UNICAST / RIB_IPV6_UNICAST record.

        ``prefix`` may be a :class:`Prefix` or :class:`Prefix6`;
        ``entries`` is a sequence of ``(peer_asn, as_path, communities)``
        tuples; peers must have been declared in the peer index table.
        """
        if not self._peer_index:
            raise c.MrtFormatError("PEER_INDEX_TABLE must be written first")
        is_v6 = isinstance(prefix, Prefix6)
        address_bytes = 16 if is_v6 else 4
        subtype = (
            c.SUBTYPE_RIB_IPV6_UNICAST if is_v6 else c.SUBTYPE_RIB_IPV4_UNICAST
        )
        octets = (prefix.length + 7) // 8
        prefix_bytes = prefix.network.to_bytes(address_bytes, "big")[:octets]
        body = [struct.pack("!I", self._sequence), bytes([prefix.length]),
                prefix_bytes, struct.pack("!H", len(entries))]
        self._sequence += 1
        for peer_asn, as_path, communities in entries:
            try:
                peer_idx = self._peer_index[peer_asn]
            except KeyError:
                raise c.MrtFormatError(
                    f"peer AS{peer_asn} not in PEER_INDEX_TABLE"
                ) from None
            attrs = encode_attributes(as_path, communities=tuple(communities))
            body.append(struct.pack("!HIH", peer_idx, self._timestamp, len(attrs)))
            body.append(attrs)
        self._record(c.TYPE_TABLE_DUMP_V2, subtype, b"".join(body))

    # ------------------------------------------------------------------
    # legacy TABLE_DUMP (v1)
    # ------------------------------------------------------------------

    def write_table_dump_entry(
        self,
        prefix: Prefix,
        peer_asn: int,
        as_path: Sequence[int],
        communities: Sequence[Tuple[int, int]] = (),
        peer_ip: int = 0x0A000002,
    ) -> None:
        """Emit one legacy TABLE_DUMP record (one prefix × one peer).

        The 1998-era format: 2-byte ASNs on the wire, with AS4_PATH
        carrying the true path when 4-byte ASNs are involved.
        """
        attrs = encode_attributes(
            as_path, communities=tuple(communities), asn_size=2
        )
        wire_peer = c.AS_TRANS if peer_asn > 0xFFFF else peer_asn
        body = (
            struct.pack("!HH", 0, self._sequence & 0xFFFF)  # view, sequence
            + struct.pack("!IB", prefix.network, prefix.length)
            + bytes([1])  # status
            + struct.pack("!I", self._timestamp)  # originated time
            + struct.pack("!I", peer_ip)
            + struct.pack("!H", wire_peer)
            + struct.pack("!H", len(attrs))
            + attrs
        )
        self._sequence += 1
        self._record(c.TYPE_TABLE_DUMP, c.SUBTYPE_AFI_IPV4, body)

    # ------------------------------------------------------------------
    # BGP4MP
    # ------------------------------------------------------------------

    def write_bgp4mp_update(
        self,
        peer_asn: int,
        local_asn: int,
        as_path: Sequence[int],
        announced: Sequence[Prefix],
        communities: Sequence[Tuple[int, int]] = (),
        withdrawn: Sequence[Prefix] = (),
    ) -> None:
        """Emit a BGP4MP_MESSAGE_AS4 record wrapping a BGP UPDATE.

        A pure withdrawal (no ``announced`` prefixes) carries an empty
        path-attribute blob, as RFC 4271 speakers send it.
        """
        attrs = (
            encode_attributes(as_path, communities=tuple(communities))
            if announced
            else b""
        )
        nlri = b"".join(
            bytes([p.length]) + p.network.to_bytes(4, "big")[: (p.length + 7) // 8]
            for p in announced
        )
        wd = b"".join(
            bytes([p.length]) + p.network.to_bytes(4, "big")[: (p.length + 7) // 8]
            for p in withdrawn
        )
        update_body = (
            struct.pack("!H", len(wd))
            + wd
            + struct.pack("!H", len(attrs))
            + attrs
            + nlri
        )
        msg_len = 16 + 2 + 1 + len(update_body)
        message = (
            c.BGP_MARKER
            + struct.pack("!HB", msg_len, c.BGP_MSG_UPDATE)
            + update_body
        )
        body = (
            struct.pack("!IIHH", peer_asn, local_asn, 0, 1)  # AFI 1 = IPv4
            + (0x0A000002).to_bytes(4, "big")  # peer IP
            + (0x0A000001).to_bytes(4, "big")  # local IP
            + message
        )
        self._record(c.TYPE_BGP4MP, c.SUBTYPE_BGP4MP_MESSAGE_AS4, body)


def write_rib_dump(
    path: str,
    rib: Iterable,
    timestamp: int = 0,
    view_name: str = "repro",
) -> int:
    """Write a corpus RIB (``repro.bgp.RibEntry`` rows) as an MRT file.

    Entries are grouped by prefix into single RIB records, as real
    table dumps are.  Returns the number of RIB records written.
    """
    grouped: Dict[Prefix, List] = {}
    peers: List[int] = []
    seen_peers = set()
    for entry in rib:
        grouped.setdefault(entry.prefix, []).append(entry)
        if entry.vp not in seen_peers:
            seen_peers.add(entry.vp)
            peers.append(entry.vp)
    with open(path, "wb") as stream:
        writer = MrtWriter(stream, timestamp=timestamp)
        writer.write_peer_index_table(peers, view_name=view_name)
        for prefix in sorted(grouped):
            writer.write_rib_entry(
                prefix,
                [
                    (e.vp, e.path, e.communities)
                    for e in grouped[prefix]
                ],
            )
    return len(grouped)
