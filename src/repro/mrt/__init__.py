"""MRT (RFC 6396) routing-information export format.

The paper's input is RouteViews / RIPE RIS RIB dumps, distributed as
MRT ``TABLE_DUMP_V2`` files.  This package implements a binary writer
and parser for that format (``PEER_INDEX_TABLE`` + ``RIB_IPV4_UNICAST``
with ORIGIN / AS_PATH / NEXT_HOP / COMMUNITIES attributes, plus a
minimal ``BGP4MP`` UPDATE codec), so the reproduction pipeline can
round-trip its synthetic RIBs through the same bytes a consumer of
public BGP data parses.
"""

from repro.mrt.writer import MrtWriter, write_rib_dump
from repro.mrt.reader import MrtReader, RibRecord, iter_rib_dump, read_rib_dump
from repro.mrt.constants import MrtFormatError

__all__ = [
    "MrtWriter",
    "MrtReader",
    "RibRecord",
    "MrtFormatError",
    "write_rib_dump",
    "read_rib_dump",
    "iter_rib_dump",
]
