"""Longitudinal pipeline: run collection + inference over a snapshot
series and extract the time series the paper's evolution figures plot —
clique membership per era, top-AS cone share ("flattening"), corpus
growth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bgp.collector import Collector, CollectorConfig
from repro.core.cone import ConeDefinition, CustomerCones
from repro.core.inference import InferenceConfig, InferenceResult, infer_relationships
from repro.core.paths import PathSet
from repro.topology.model import ASGraph


@dataclass
class SnapshotMetrics:
    """Everything measured for one era of the series."""

    label: str
    n_ases: int
    n_links: int
    n_paths: int
    true_clique: List[int]
    inferred_clique: List[int]
    cone_sizes: Dict[int, int]  # provider/peer-observed, in ASes
    recursive_cone_sizes: Dict[int, int] = field(default_factory=dict)
    result: InferenceResult = field(repr=False, default=None)
    vps: list = field(repr=False, default_factory=list)

    @property
    def clique_recall(self) -> float:
        true = set(self.true_clique)
        if not true:
            return 1.0
        return len(true & set(self.inferred_clique)) / len(true)

    def cone_share(self, asn: int, recursive: bool = False) -> float:
        """Cone size as a fraction of all observed ASes.

        Defaults to the provider/peer-observed cone, the paper's
        preferred definition: the recursive cone is catastrophically
        sensitive to a single mislabeled link between two large
        networks (one error merges their entire cones), which is the
        paper's argument against it.  The observed cone trades that for
        bounded vantage-point sensitivity.
        """
        if not self.n_ases:
            return 0.0
        sizes = self.recursive_cone_sizes if recursive else self.cone_sizes
        return sizes.get(asn, 1) / self.n_ases


def analyze_snapshot(
    label: str,
    graph: ASGraph,
    collector_config: Optional[CollectorConfig] = None,
    inference_config: Optional[InferenceConfig] = None,
    preset_vps=None,
) -> SnapshotMetrics:
    """Collect, sanitize, infer and cone-compute one snapshot."""
    collector = Collector(graph, collector_config, preset_vps=preset_vps)
    corpus = collector.run()
    paths = PathSet.sanitize(corpus.paths, ixp_asns=graph.ixp_asns())
    result = infer_relationships(paths, inference_config)
    cones = CustomerCones.compute(result, ConeDefinition.PROVIDER_PEER_OBSERVED)
    recursive = CustomerCones.compute(result, ConeDefinition.RECURSIVE)
    return SnapshotMetrics(
        label=label,
        n_ases=len(paths.asns()),
        n_links=len(paths.links()),
        n_paths=len(paths),
        true_clique=graph.clique_asns(),
        inferred_clique=list(result.clique.members),
        cone_sizes=cones.sizes(),
        recursive_cone_sizes=recursive.sizes(),
        result=result,
        vps=list(collector.vps),
    )


def series_metrics(
    snapshots: Sequence[Tuple[str, ASGraph]],
    collector_config: Optional[CollectorConfig] = None,
    inference_config: Optional[InferenceConfig] = None,
    vps_per_as: float = 0.05,
    workers: int = 0,
) -> List[SnapshotMetrics]:
    """Analyze every era of a series.

    The number of vantage points grows with the topology (as RouteViews
    itself did); ``vps_per_as`` sets that proportion unless an explicit
    collector config pins it.  ``workers`` fans each era's collection
    across that many processes; the collector keeps one persistent
    worker pool per process, so consecutive eras reuse the same workers
    instead of forking a fresh pool per snapshot.
    """
    metrics: List[SnapshotMetrics] = []
    persistent_vps: list = []
    for label, graph in snapshots:
        config = collector_config
        if config is None:
            config = CollectorConfig(
                n_vps=max(10, int(len(graph) * vps_per_as)),
                workers=workers,
            )
        snapshot = analyze_snapshot(
            label, graph, config, inference_config, preset_vps=persistent_vps
        )
        persistent_vps = snapshot.vps
        metrics.append(snapshot)
    return metrics


def flattening_series(
    metrics: Sequence[SnapshotMetrics],
    track: Optional[Sequence[int]] = None,
    recursive: bool = False,
) -> Dict[int, List[float]]:
    """Cone share per era for the tracked ASes (E8's figure series).

    Defaults to tracking the union of every era's top-5 cones.
    """
    if track is None:
        tracked: Set[int] = set()
        for snapshot in metrics:
            sizes = (
                snapshot.recursive_cone_sizes if recursive else snapshot.cone_sizes
            )
            top = sorted(sizes.items(), key=lambda kv: -kv[1])[:5]
            tracked.update(asn for asn, _ in top)
        track = sorted(tracked)
    return {
        asn: [snapshot.cone_share(asn, recursive=recursive) for snapshot in metrics]
        for asn in track
    }
