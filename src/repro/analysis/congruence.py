"""IPv4/IPv6 relationship congruence.

The authors' follow-on work ("IPv6 AS Relationships, Cliques, and
Congruence", PAM 2015) asks whether the business relationship between
two networks is the same in both address families.  This module
compares two independent inference results — one per plane — link by
link: label agreement for dual links, plane-exclusive links, and the
overlap of the inferred cliques.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.relationships import Relationship


@dataclass
class CongruenceReport:
    """Link-level agreement between the v4 and v6 inferences."""

    dual_links: int = 0  # observed and labeled in both planes
    congruent: int = 0  # same relationship (and provider direction)
    v4_only: int = 0
    v6_only: int = 0
    by_relationship: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    # (v4 label, v6 label) → count, for the disagreement matrix
    disagreements: Dict[Tuple[str, str], int] = field(default_factory=dict)
    clique_v4: List[int] = field(default_factory=list)
    clique_v6: List[int] = field(default_factory=list)

    @property
    def congruence(self) -> float:
        """Fraction of dual links with identical labels (paper: ~96-97%)."""
        return self.congruent / self.dual_links if self.dual_links else 1.0

    @property
    def clique_jaccard(self) -> float:
        v4, v6 = set(self.clique_v4), set(self.clique_v6)
        union = v4 | v6
        return len(v4 & v6) / len(union) if union else 1.0


def _label(inference, a: int, b: int) -> str:
    """Directional label: 'p2p', 's2s', or 'p2c:<provider>'."""
    rel = inference.relationship(a, b)
    if rel is Relationship.P2C:
        return f"p2c:{inference.provider_of(a, b)}"
    return rel.label


def congruence_report(result_v4, result_v6) -> CongruenceReport:
    """Compare two inference results link by link.

    Both arguments are :class:`~repro.core.inference.InferenceResult`
    (or anything with the same query surface plus ``clique``).
    """
    links_v4 = set(result_v4.links())
    links_v6 = set(result_v6.links())
    report = CongruenceReport(
        v4_only=len(links_v4 - links_v6),
        v6_only=len(links_v6 - links_v4),
        clique_v4=sorted(getattr(result_v4.clique, "members", [])),
        clique_v6=sorted(getattr(result_v6.clique, "members", [])),
    )
    per_rel: Dict[str, List[int]] = {}
    for a, b in sorted(links_v4 & links_v6):
        report.dual_links += 1
        label_v4 = _label(result_v4, a, b)
        label_v6 = _label(result_v6, a, b)
        rel_v4 = result_v4.relationship(a, b).label
        agree = label_v4 == label_v6
        if agree:
            report.congruent += 1
        else:
            key = (rel_v4, result_v6.relationship(a, b).label)
            report.disagreements[key] = report.disagreements.get(key, 0) + 1
        bucket = per_rel.setdefault(rel_v4, [0, 0])
        bucket[0] += 1
        bucket[1] += 1 if agree else 0
    report.by_relationship = {
        rel: (total, agree) for rel, (total, agree) in per_rel.items()
    }
    return report
