"""Topology and cone analysis used by the longitudinal experiments."""

from repro.analysis.metrics import (
    cone_overlap,
    cone_share,
    degree_distribution,
    exclusive_cone,
    hierarchy_depths,
    link_visibility,
    mean_path_length,
    path_length_distribution,
    snapshot_summary,
)
from repro.analysis.congruence import CongruenceReport, congruence_report
from repro.analysis.timeseries import SnapshotMetrics, series_metrics

__all__ = [
    "CongruenceReport",
    "congruence_report",
    "cone_overlap",
    "cone_share",
    "degree_distribution",
    "exclusive_cone",
    "hierarchy_depths",
    "link_visibility",
    "mean_path_length",
    "path_length_distribution",
    "snapshot_summary",
    "SnapshotMetrics",
    "series_metrics",
]
