"""Per-snapshot structural metrics.

Everything the paper's figures summarize a snapshot with: corpus size,
degree distributions, link visibility across vantage points, hierarchy
depth, and cone share (the "how much of the Internet is under this AS"
number the flattening analysis tracks).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bgp.collector import PathCorpus
from repro.core.cone import CustomerCones
from repro.core.paths import PathSet
from repro.relationships import Relationship, canonical_pair
from repro.topology.model import ASGraph


def snapshot_summary(corpus: PathCorpus, paths: PathSet) -> Dict[str, int]:
    """The E1 corpus-summary row: VPs, paths, ASes, links."""
    return {
        "vps": len(corpus.vps),
        "full_feeds": sum(1 for vp in corpus.vps if vp.full_feed),
        "partial_feeds": sum(1 for vp in corpus.vps if not vp.full_feed),
        "raw_paths": corpus.path_counts and sum(corpus.path_counts.values()) or 0,
        "unique_paths": len(paths),
        "ases": len(paths.asns()),
        "links": len(paths.links()),
        "rib_entries": len(corpus.rib),
    }


def degree_distribution(paths: PathSet, transit: bool = True) -> Dict[int, int]:
    """Histogram of (transit or node) degree over observed ASes."""
    counts: Counter = Counter()
    for asn in paths.asns():
        degree = paths.transit_degree(asn) if transit else paths.node_degree(asn)
        counts[degree] += 1
    return dict(counts)


def link_visibility(paths: PathSet) -> Dict[Tuple[int, int], int]:
    """How many distinct vantage points observed each link.

    The first hop of each path is the VP; peering links low in the
    hierarchy are typically visible from very few VPs — the paper's
    core visibility argument (experiment E10).
    """
    seen: Dict[Tuple[int, int], Set[int]] = {}
    for path in paths:
        vp = path[0]
        for a, b in zip(path, path[1:]):
            seen.setdefault(canonical_pair(a, b), set()).add(vp)
    return {pair: len(vps) for pair, vps in seen.items()}


def visibility_by_relationship(
    paths: PathSet, graph: ASGraph
) -> Dict[str, List[int]]:
    """VP-visibility samples grouped by the link's true relationship."""
    visibility = link_visibility(paths)
    grouped: Dict[str, List[int]] = {"p2c": [], "p2p": [], "s2s": []}
    for (a, b), count in visibility.items():
        rel = graph.relationship(a, b)
        if rel is not None:
            grouped[rel.label].append(count)
    return grouped


def true_link_coverage(paths: PathSet, graph: ASGraph) -> Dict[str, float]:
    """Fraction of each true link class observed at all (E10).

    Peering links deep in the hierarchy are invisible unless a VP sits
    underneath one of the endpoints, so p2p coverage is always far
    below p2c coverage — the paper's motivating observation.
    """
    observed = paths.links()
    totals: Counter = Counter()
    seen: Counter = Counter()
    for a, b, rel in graph.links():
        totals[rel.label] += 1
        if canonical_pair(a, b) in observed:
            seen[rel.label] += 1
    return {
        label: (seen[label] / totals[label]) if totals[label] else 0.0
        for label in totals
    }


def hierarchy_depths(result) -> Dict[int, int]:
    """Provider-chain depth of each AS (clique members are depth 0).

    Uses the inferred relationships; depth is the shortest climb to a
    provider-free AS.
    """
    from collections import deque

    depths: Dict[int, int] = {}
    roots = [
        asn
        for asn in result.paths.asns()
        if not result.providers.get(asn)
    ]
    queue = deque((root, 0) for root in sorted(roots))
    for root in roots:
        depths[root] = 0
    while queue:
        node, depth = queue.popleft()
        for customer in sorted(result.customers.get(node, ())):
            if customer not in depths or depths[customer] > depth + 1:
                depths[customer] = depth + 1
                queue.append((customer, depth + 1))
    return depths


def cone_share(cones: CustomerCones, asn: int, total_ases: int) -> float:
    """Cone size as a fraction of all observed ASes (flattening metric)."""
    if total_ases <= 0:
        return 0.0
    return cones.size_ases(asn) / total_ases


def cone_overlap(
    cones: CustomerCones, asns: Sequence[int]
) -> Dict[Tuple[int, int], float]:
    """Jaccard overlap between the cones of the given ASes.

    Large transit providers share big parts of their cones (multihomed
    customers appear in several); the overlap matrix quantifies how
    much of the market is contested versus captive.
    """
    result: Dict[Tuple[int, int], float] = {}
    for i, a in enumerate(asns):
        cone_a = cones.cone(a)
        for b in asns[i + 1:]:
            cone_b = cones.cone(b)
            union = len(cone_a | cone_b)
            result[(a, b)] = (
                len(cone_a & cone_b) / union if union else 0.0
            )
    return result


def exclusive_cone(cones: CustomerCones, asn: int, others: Sequence[int]) -> Set[int]:
    """Members of ``asn``'s cone found in no other listed cone —
    customers only reachable through this provider."""
    exclusive = cones.cone(asn)
    for other in others:
        if other != asn:
            exclusive -= cones.cone(other)
    return exclusive


def path_length_distribution(paths: PathSet) -> Dict[int, int]:
    """Histogram of AS-path lengths (in hops) over the unique corpus.

    The Internet's famously short paths (median 4-5 ASes) are a direct
    consequence of the hierarchy the inference algorithm recovers.
    """
    counts: Counter = Counter()
    for path in paths:
        counts[len(path)] += 1
    return dict(counts)


def mean_path_length(paths: PathSet) -> float:
    """Mean AS-path length weighted by observation count."""
    total = 0
    weight = 0
    for path in paths:
        multiplicity = paths.counts.get(path, 1)
        total += len(path) * multiplicity
        weight += multiplicity
    return total / weight if weight else 0.0
