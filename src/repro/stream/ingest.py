"""StreamIngestor: UPDATE batches in, content-versioned snapshots out.

The ingestor owns the :class:`~repro.stream.corpus.LiveCorpus`, decides
per publish which of the three apply levels to take, and hands the
resulting snapshot to a pluggable publisher:

* **noop** — the sanitized corpus and the prefix map both match the last
  published state; the previous snapshot object is reused unchanged.
* **delta** — :func:`repro.stream.delta.try_delta` proved the batch
  labels unchanged; only cones/ranks/sections are recomputed.
* **full** — the always-safe fallback: a batch recompute through
  :func:`repro.stream.corpus.asrank_from_rib_rows` (the QA oracle).

Publishers adapt the snapshot to the serving tier:
:class:`StorePublisher` swaps it into an in-process
:class:`~repro.serve.store.SnapshotStore` (single server hot reload),
:class:`FleetPublisher` saves it to disk and drives the
:class:`~repro.serve.workers.WorkerFleet` two-phase coordinated reload.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.cone import ConeDefinition
from repro.core.inference import InferenceConfig
from repro.core.paths import PathSet
from repro.mrt.reader import RibRecord, UpdateRecord
from repro.stream.corpus import CachedSanitizer, LiveCorpus, prefixes_from_rows
from repro.stream.delta import LiveState, try_delta


@dataclass
class IngestStats:
    """Counters surfaced through ``/metrics`` and ``/stream``."""

    batches: int = 0
    updates: int = 0
    announces: int = 0
    withdrawals: int = 0
    links_added: int = 0
    links_removed: int = 0
    publishes: int = 0
    noop_publishes: int = 0
    delta_publishes: int = 0
    full_publishes: int = 0
    apply_seconds: float = 0.0
    build_seconds: float = 0.0
    last_apply_seconds: float = 0.0
    last_build_seconds: float = 0.0
    last_publish_mode: Optional[str] = None
    last_publish_version: Optional[str] = None
    last_publish_unix: Optional[float] = None
    fallbacks: Dict[str, int] = field(default_factory=dict)

    def as_dict(self, now: Optional[float] = None) -> Dict[str, object]:
        out: Dict[str, object] = {
            "batches": self.batches,
            "updates": self.updates,
            "announces": self.announces,
            "withdrawals": self.withdrawals,
            "links_added": self.links_added,
            "links_removed": self.links_removed,
            "publishes": self.publishes,
            "noop_publishes": self.noop_publishes,
            "delta_publishes": self.delta_publishes,
            "full_publishes": self.full_publishes,
            "apply_seconds": round(self.apply_seconds, 6),
            "build_seconds": round(self.build_seconds, 6),
            "last_apply_seconds": round(self.last_apply_seconds, 6),
            "last_build_seconds": round(self.last_build_seconds, 6),
            "last_publish_mode": self.last_publish_mode,
            "last_publish_version": self.last_publish_version,
            "fallbacks": dict(self.fallbacks),
        }
        if self.last_publish_unix is not None and now is not None:
            out["last_publish_age_s"] = round(now - self.last_publish_unix, 3)
        return out


class StorePublisher:
    """Swap each published snapshot into an in-process store."""

    def __init__(self, store) -> None:
        self.store = store

    def __call__(self, snapshot) -> None:
        self.store.swap(snapshot)


class FleetPublisher:
    """Save each snapshot to ``path`` and coordinate a fleet reload."""

    def __init__(self, fleet, path: str) -> None:
        self.fleet = fleet
        self.path = path

    def __call__(self, snapshot) -> None:
        from repro.serve.store import save_snapshot

        save_snapshot(snapshot, self.path)
        self.fleet.reload(self.path)


class StreamIngestor:
    """Incremental inference driver over decoded UPDATE batches."""

    def __init__(
        self,
        ixp_asns: Iterable[int] = frozenset(),
        config: Optional[InferenceConfig] = None,
        source: str = "stream",
        base_rows: Optional[Iterable[RibRecord]] = None,
        full_threshold: float = 0.25,
        publisher: Optional[Callable[[object], None]] = None,
    ) -> None:
        self.ixp_asns = frozenset(ixp_asns)
        self.config = config or InferenceConfig()
        self.source = source
        self.corpus = LiveCorpus(base_rows)
        self._sanitizer = CachedSanitizer(self.ixp_asns)
        self.full_threshold = full_threshold
        self.publisher = publisher
        self.live: Optional[LiveState] = None
        self.stats = IngestStats()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------

    def apply_batch(self, updates: Iterable[UpdateRecord]) -> None:
        updates = list(updates)
        announced, withdrawn = self.corpus.apply(updates)
        with self._lock:
            self.stats.batches += 1
            self.stats.updates += len(updates)
            self.stats.announces += announced
            self.stats.withdrawals += withdrawn

    def publish(self):
        """Build and publish a snapshot for the current table.

        Returns the published :class:`~repro.serve.snapshot.Snapshot`
        (the previous one on a noop).  Every returned snapshot is
        bit-identical to a batch recompute over ``self.corpus.rows()``.
        """
        start = time.perf_counter()
        rows = self.corpus.rows()
        dirty = self.corpus.dirty_fraction()
        self.corpus.clear_dirty()
        sanitized = self._sanitizer.sanitize(row.as_path for row in rows)
        prefixes = prefixes_from_rows(rows)

        mode, reason, state = "full", None, None
        if self.live is not None:
            if (
                sanitized.paths == self.live.sanitized.paths
                and prefixes == self.live.prefixes_by_asn
            ):
                mode, state = "noop", self.live
            elif dirty > self.full_threshold:
                reason = "dirty-threshold"
            else:
                state, reason = try_delta(
                    self.live, sanitized, prefixes, self.config
                )
                if state is not None:
                    mode = "delta"
        else:
            reason = "cold-start"

        old_links = (
            self.live.filtered.links() if self.live is not None else set()
        )
        if state is None:
            state = self._full_state(sanitized, prefixes)
        applied = time.perf_counter()

        if mode == "noop":
            built = applied
        else:
            state.snapshot = state.facade.snapshot(source=self.source)
            built = time.perf_counter()
            if self.publisher is not None:
                self.publisher(state.snapshot)
        snapshot = state.snapshot
        new_links = state.filtered.links()
        self.live = state

        with self._lock:
            st = self.stats
            st.publishes += 1
            if mode == "noop":
                st.noop_publishes += 1
            elif mode == "delta":
                st.delta_publishes += 1
            else:
                st.full_publishes += 1
                if reason is not None:
                    st.fallbacks[reason] = st.fallbacks.get(reason, 0) + 1
            st.links_added += len(new_links - old_links)
            st.links_removed += len(old_links - new_links)
            st.last_apply_seconds = applied - start
            st.last_build_seconds = built - applied
            st.apply_seconds += st.last_apply_seconds
            st.build_seconds += st.last_build_seconds
            st.last_publish_mode = mode
            st.last_publish_version = snapshot.version
            st.last_publish_unix = time.time()
        return snapshot

    def run(
        self,
        batches: Iterable[Sequence[UpdateRecord]],
        publish_every: int = 1,
    ) -> List[object]:
        """Apply batches in order, publishing every ``publish_every``
        batches (and once at the end if work is pending)."""
        published: List[object] = []
        pending = 0
        for batch in batches:
            self.apply_batch(batch)
            pending += 1
            if publish_every and pending >= publish_every:
                published.append(self.publish())
                pending = 0
        if pending or not published:
            published.append(self.publish())
        return published

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """Point-in-time ingest status for ``/stream`` and ``--status``."""
        with self._lock:
            out = self.stats.as_dict(now=time.time())
        out["source"] = self.source
        out["table_rows"] = len(self.corpus)
        out["dirty_rows"] = len(self.corpus.dirty_keys)
        out["full_threshold"] = self.full_threshold
        return out

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _full_state(self, sanitized: PathSet, prefixes) -> LiveState:
        """Batch recompute, staged so apply/build timings separate."""
        from repro.asrank import ASRank

        facade = ASRank(
            sanitized, config=self.config, prefixes_by_asn=prefixes
        )
        facade.result  # force inference
        for definition in ConeDefinition:
            facade.cones(definition)
        bits = {
            definition: facade.cones(definition).bits
            for definition in ConeDefinition
        }
        return LiveState(
            facade=facade,
            sanitized=sanitized,
            filtered=facade.result.paths,
            prefixes_by_asn=prefixes,
            bits=bits,
        )
