"""Live RIB table with announce/withdraw semantics.

The stream layer's source of truth is the same per-``(prefix, peer)``
route table that :func:`repro.mrt.updates.rib_from_updates` reconstructs
offline: the last announcement for a key wins, a withdrawal removes the
key, and withdrawals inside an UPDATE are applied before its
announcements (RFC 4271 ordering).  :class:`LiveCorpus` keeps that table
resident and additionally tracks which keys changed since the last
publish so the ingestor can estimate the dirty fraction cheaply.

:func:`asrank_from_rib_rows` is the single shared definition of "batch
recompute over a set of RIB rows" — the stream's full publishes, the QA
family 10 comparator, and the CI smoke all call it, which makes the
streamed-vs-batch bit-identity contract trivially well-defined.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.paths import (
    PathSet,
    SanitizeStats,
    compress_prepending,
    has_loop,
    is_reserved_asn,
)
from repro.mrt.reader import RibRecord, UpdateRecord

TableKey = Tuple[object, int]  # (Prefix, peer_asn)


def prefixes_from_rows(rows: Iterable[RibRecord]) -> Dict[int, List]:
    """Origin-ASN → sorted prefixes, exactly as ``ASRank.from_mrt`` derives it."""
    by_asn: Dict[int, Set] = {}
    for row in rows:
        if row.as_path:
            by_asn.setdefault(row.as_path[-1], set()).add(row.prefix)
    return {asn: sorted(prefixes) for asn, prefixes in by_asn.items()}


def asrank_from_rib_rows(rows: Sequence[RibRecord], ixp_asns=frozenset(), config=None):
    """Batch-recompute facade over RIB rows (the family 10 oracle)."""
    from repro.asrank import ASRank

    return ASRank.from_paths(
        (row.as_path for row in rows),
        ixp_asns=ixp_asns,
        config=config,
        prefixes_by_asn=prefixes_from_rows(rows),
    )


class LiveCorpus:
    """Mutable RIB table driven by decoded UPDATE records.

    The final table after any sequence of :meth:`apply` calls equals
    ``rib_from_updates(all_updates, base=base_rows)`` — the unit tests
    pin that equivalence against randomized sequences.
    """

    def __init__(self, base: Optional[Iterable[RibRecord]] = None) -> None:
        self.table: Dict[TableKey, RibRecord] = {}
        for row in base or ():
            self.table[(row.prefix, row.peer_asn)] = row
        # keys kept sorted incrementally, so a publish over a
        # barely-changed table doesn't pay an O(n log n) re-sort
        self._sorted_keys: List[TableKey] = sorted(self.table)
        #: keys touched since the last ``clear_dirty`` (i.e. last publish)
        self.dirty_keys: Set[TableKey] = set()
        self.announced = 0
        self.withdrawn = 0

    def __len__(self) -> int:
        return len(self.table)

    def apply(self, updates: Iterable[UpdateRecord]) -> Tuple[int, int]:
        """Apply decoded UPDATE records in order; returns (announced, withdrawn).

        Withdrawals inside a record are applied before its announcements,
        matching :func:`repro.mrt.updates.rib_from_updates`.
        """
        announced = withdrawn = 0
        table = self.table
        dirty = self.dirty_keys
        keys = self._sorted_keys
        for update in updates:
            for prefix in update.withdrawn:
                key = (prefix, update.peer_asn)
                if table.pop(key, None) is not None:
                    withdrawn += 1
                    dirty.add(key)
                    del keys[bisect_left(keys, key)]
            for prefix in update.announced:
                key = (prefix, update.peer_asn)
                row = RibRecord(
                    prefix=prefix,
                    peer_asn=update.peer_asn,
                    as_path=update.as_path,
                    communities=update.communities,
                )
                if key not in table:
                    insort(keys, key)
                if table.get(key) != row:
                    dirty.add(key)
                table[key] = row
                announced += 1
        self.announced += announced
        self.withdrawn += withdrawn
        return announced, withdrawn

    def dirty_fraction(self) -> float:
        """Fraction of the table touched since the last publish."""
        return len(self.dirty_keys) / max(1, len(self.table))

    def clear_dirty(self) -> None:
        self.dirty_keys.clear()

    def rows(self) -> List[RibRecord]:
        """Deterministic row order, identical to ``rib_from_updates``."""
        table = self.table
        return [table[key] for key in self._sorted_keys]


class CachedSanitizer:
    """Memoized :meth:`PathSet.sanitize` for a slowly-churning corpus.

    Per-path cleaning (prepending compression, reserved-ASN and loop
    discards, IXP splice-out) depends only on the raw path and the IXP
    set, so it is memoized per distinct raw path: a publish over a
    table where only a handful of rows changed costs one dict lookup
    per row instead of re-cleaning every hop.  The output — paths,
    multiplicity counts and the full :class:`SanitizeStats` — is
    bit-identical to ``PathSet.sanitize`` on the same input order (the
    unit tests pin the equivalence), so swapping it into the stream's
    publish path cannot perturb snapshot versions.

    The memo grows with the number of *distinct* raw paths ever seen,
    not with the table size; withdrawn paths keep their entries so a
    re-announcement stays a cache hit.
    """

    def __init__(self, ixp_asns=frozenset()) -> None:
        self.ixp_asns = frozenset(ixp_asns)
        # raw path -> (cleaned path or None, prepending, reserved,
        #              ixp_removed, loop, short) counter deltas
        self._memo: Dict[
            Tuple[int, ...], Tuple[Optional[Tuple[int, ...]], int, int, int, int, int]
        ] = {}

    def _clean(
        self, path: Tuple[int, ...]
    ) -> Tuple[Optional[Tuple[int, ...]], int, int, int, int, int]:
        """One path through the stage-1 pipeline, stats as deltas."""
        if not path:
            return None, 0, 0, 0, 0, 1
        prepending = 0
        compressed = compress_prepending(path)
        if len(compressed) != len(path):
            prepending = 1
        path = compressed
        if any(is_reserved_asn(asn) for asn in path):
            return None, prepending, 1, 0, 0, 0
        ixp_removed = 0
        if self.ixp_asns and any(asn in self.ixp_asns for asn in path):
            path = tuple(asn for asn in path if asn not in self.ixp_asns)
            ixp_removed = 1
            path = compress_prepending(path)
        if has_loop(path):
            return None, prepending, 0, ixp_removed, 1, 0
        if len(path) < 2:
            return None, prepending, 0, ixp_removed, 0, 1
        return path, prepending, 0, ixp_removed, 0, 0

    def sanitize(self, raw_paths: Iterable[Sequence[int]]) -> PathSet:
        """Drop-in for ``PathSet.sanitize(raw_paths, self.ixp_asns)``."""
        memo = self._memo
        stats = SanitizeStats()
        kept: List[Tuple[int, ...]] = []
        counts: Dict[Tuple[int, ...], int] = {}
        for raw in raw_paths:
            stats.input_paths += 1
            entry = memo.get(raw if type(raw) is tuple else tuple(raw))
            if entry is None:
                key = tuple(raw)
                entry = memo[key] = self._clean(key)
            path, prepending, reserved, ixp_removed, loop, short = entry
            stats.prepending_compressed += prepending
            stats.discarded_reserved_asn += reserved
            stats.ixp_hops_removed += ixp_removed
            stats.discarded_loops += loop
            stats.discarded_short += short
            if path is None:
                continue
            if path in counts:
                counts[path] += 1
                stats.duplicates_merged += 1
            else:
                counts[path] = 1
                kept.append(path)
        stats.kept = len(kept)
        return PathSet(kept, counts, stats)
