"""Live-stream ingest: incremental inference over MRT UPDATE batches.

The batch pipeline rebuilds the world from scratch for every era; this
package is the streaming twin.  :class:`~repro.stream.corpus.LiveCorpus`
maintains the per-(prefix, peer) RIB table under announce/withdraw
semantics, :class:`~repro.stream.ingest.StreamIngestor` turns batches of
decoded UPDATE records into published snapshots, and
:mod:`repro.stream.delta` is the checked incremental apply that makes a
publish cheap when a batch only grows the corpus benignly.

The correctness contract is differential and absolute: every published
snapshot is bit-identical (equal content version) to a batch recompute
over the same final corpus.  The delta path earns its speed by proving
a set of agreement preconditions against the live inference state and
falling back to a full recompute whenever any of them fails — QA
family 10 checks the contract on every publish of seeded worlds.
"""

from repro.stream.corpus import (
    LiveCorpus,
    asrank_from_rib_rows,
    prefixes_from_rows,
)
from repro.stream.delta import LiveState, try_delta
from repro.stream.ingest import (
    FleetPublisher,
    IngestStats,
    StorePublisher,
    StreamIngestor,
)

__all__ = [
    "FleetPublisher",
    "IngestStats",
    "LiveCorpus",
    "LiveState",
    "StorePublisher",
    "StreamIngestor",
    "asrank_from_rib_rows",
    "prefixes_from_rows",
    "try_delta",
]
