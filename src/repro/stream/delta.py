"""Checked incremental apply: the stream layer's cheap publish path.

The batch engine is a long chain of order-sensitive votes (clique peers,
partial-VP scans, top-down scans, valley-free folds, then the late
stub/gap/providerless/p2p sweeps).  Replaying that chain incrementally
is fragile, so the delta path takes a different deal: it never mutates a
single relationship label.  Instead it proves, against the live
inference state, that a hypothetical batch run over the *new* corpus
would label every link exactly as the live state already does — and only
then extends the corpus index, ORs the new paths' contributions into the
cone bitsets, and re-derives ranks/prefixes/snapshot sections.  Any
check that cannot be proven falls back to a full recompute, which is
trivially bit-identical to the batch oracle because it *is* the batch
oracle (:func:`repro.stream.corpus.asrank_from_rib_rows`).

The envelope the delta accepts (all conditions required):

* the pipeline runs with the default step set and the fast link index;
* the old filtered corpus is an order-preserving subsequence of the new
  one, with identical AS set, identical link set (zero new links),
  identical per-AS transit degrees, identical clique members, and an
  identical partial-VP set;
* every link of every new path carries a final label from the early
  steps (S2B/S3/S4B/S5/S6 — never stub/gap/providerless/remaining-p2p),
  and simulating the partial-VP scan, the top-down scan, and both fold
  directions over each new path against the final link states produces
  only agreeing votes or provably-identical scan breaks.

Under those conditions every vote a new path could cast in the batch run
agrees with an already-final label.  Labels are write-once, the p2c DAG
only grows (so cycle refusals are permanent), and conflicts are
permanent, so agreeing votes are no-ops wherever they land in the order;
the unlabeled sets entering the late sweeps coincide, and those sweeps
iterate links / ranked ASes — both unchanged.  Step *attribution* may
differ from a fresh run, but snapshot sections never encode steps, so
the content version is unaffected.  QA family 10 arbitrates the whole
argument differentially on every publish of seeded worlds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.clique import infer_clique
from repro.core.cone import ConeDefinition, CustomerCones
from repro.core.inference import InferenceConfig, Step, _discard_poisoned
from repro.core.paths import PathSet
from repro.relationships import Relationship, canonical_pair

PathT = Tuple[int, ...]

#: steps applied after the fold phase; a new path touching such a link
#: would have seen it *unlabeled* during the phases we simulate, so its
#: votes there are unknowable without a replay
_LATE_STEPS = frozenset(
    (Step.S7_STUB, Step.S7B_GAP, Step.S8_PROVIDERLESS, Step.S9_REMAINING_P2P)
)

#: labels from these steps are in place before the partial-VP phase
#: starts, so a disagreeing one makes the batch scan break (not vote)
_PRE_S4B_STEPS = frozenset((Step.S2B_SIBLING, Step.S3_CLIQUE))

#: ... and these are in place before the top-down phase starts
_PRE_S5_STEPS = frozenset(
    (Step.S2B_SIBLING, Step.S3_CLIQUE, Step.S4B_PARTIAL_VP)
)

#: delta eligibility requires the default pipeline: disabling any of
#: these steps changes which votes the batch run would cast, and the
#: simulation below assumes the full default chain
_REQUIRED_ENABLES = (
    "enable_clique",
    "enable_poisoned_filter",
    "enable_partial_vp",
    "enable_topdown",
    "enable_fold",
    "enable_stub",
    "enable_degree_gap",
    "enable_providerless",
)


@dataclass
class LiveState:
    """Everything the stream keeps resident between publishes."""

    facade: object  # repro.asrank.ASRank, with _result/_cones populated
    sanitized: PathSet  # pre-filter corpus (clique input)
    filtered: PathSet  # post-poison-filter corpus (== result.paths)
    prefixes_by_asn: Dict[int, List]
    bits: Dict[ConeDefinition, List[int]]
    snapshot: Optional[object] = None  # attached by the publisher

    @property
    def result(self):
        return self.facade._result


def _partial_vps(paths: PathSet, coverage: float) -> Set[int]:
    """VPs classified as partial feeds, mirroring the engine's S4B."""
    origins_total = {path[-1] for path in paths}
    if not origins_total:
        return set()
    by_vp: Dict[int, Set[int]] = {}
    for path in paths:
        by_vp.setdefault(path[0], set()).add(path[-1])
    threshold = coverage * len(origins_total)
    return {vp for vp, origins in by_vp.items() if len(origins) < threshold}


def try_delta(
    live: LiveState,
    sanitized_new: PathSet,
    prefixes_new: Dict[int, List],
    config: InferenceConfig,
) -> Tuple[Optional[LiveState], Optional[str]]:
    """Attempt the checked incremental apply.

    Returns ``(new_state, None)`` on success (snapshot not yet built) or
    ``(None, reason)`` when any precondition fails and the caller must
    run a full recompute.  ``live`` is never mutated on failure.
    """
    result = live.result
    if not config.fast or result._key_lid is None or result._lstate is None:
        return None, "no-fast-index"
    if not all(getattr(config, flag) for flag in _REQUIRED_ENABLES):
        return None, "non-default-pipeline"
    if config.known_siblings:
        # S2B consumes sibling pairs against corpus links; new paths
        # cannot add links (checked below) but keeping the envelope
        # narrow keeps the argument auditable
        return None, "known-siblings"

    # clique runs on the raw sanitized corpus, before the poison filter
    clique = infer_clique(
        sanitized_new,
        seed_size=config.clique_seed_size,
        stop_after=config.clique_stop_after,
    )
    if clique.members != result.clique.members:
        return None, "clique-changed"
    if clique.members:
        filtered_new, discarded = _discard_poisoned(
            sanitized_new, set(clique.members)
        )
    else:
        filtered_new, discarded = sanitized_new, 0

    old = live.filtered
    old_set = set(old.paths)
    new_paths = [p for p in filtered_new.paths if p not in old_set]
    if len(filtered_new.paths) - len(new_paths) != len(old.paths):
        return None, "paths-removed"
    # the surviving old paths must appear in their original order (the
    # engine's votes are order-sensitive)
    walker = iter(filtered_new.paths)
    for p in old.paths:
        for q in walker:
            if q == p:
                break
        else:
            return None, "paths-reordered"

    if filtered_new.asns() != old.asns():
        return None, "asns-changed"
    if filtered_new.links() != old.links():
        return None, "links-changed"
    # S7/S7B compare *exact* transit degrees (gap factors, stub checks),
    # so degree preservation — not just rank preservation — is required
    if filtered_new.transit_degrees() != old.transit_degrees():
        return None, "degrees-changed"
    partial = _partial_vps(old, config.partial_vp_coverage)
    if _partial_vps(filtered_new, config.partial_vp_coverage) != partial:
        return None, "partial-vps-changed"

    key_lid = result._key_lid
    lstate = result._lstate
    step_of = result._step
    rel_of = result._rel
    provider_of = result._provider
    ranked = {asn: i for i, asn in enumerate(filtered_new.ranked_asns())}

    checked: List[Tuple[PathT, List[int]]] = []
    for path in new_paths:
        pairs = [canonical_pair(a, b) for a, b in zip(path, path[1:])]
        steps = [step_of.get(pair) for pair in pairs]
        if any(s is None or s in _LATE_STEPS for s in steps):
            return None, "late-step-link"

        # --- S4B simulation: the batch run walks the path left-to-right
        # voting "path[j] provides path[j+1]" until a refusal breaks it
        if path[0] in partial:
            for j, pair in enumerate(pairs):
                if (
                    rel_of[pair] is Relationship.P2C
                    and provider_of[pair] == path[j]
                ):
                    continue  # agreeing vote: accepted (or already set)
                if steps[j] in _PRE_S4B_STEPS:
                    break  # label predates S4B: the batch scan breaks too
                return None, "partial-vp-vote"

        # --- S5 simulation: scan outward from the highest-ranked hop
        peak = min(range(len(path)), key=lambda i: ranked[path[i]])
        for j in range(peak + 1, len(path) - 1):
            pair = pairs[j]
            if (
                rel_of[pair] is Relationship.P2C
                and provider_of[pair] == path[j]
            ):
                continue
            if steps[j] in _PRE_S5_STEPS:
                break
            return None, "topdown-vote"
        for j in range(peak - 2, -1, -1):
            pair = pairs[j]
            if (
                rel_of[pair] is Relationship.P2C
                and provider_of[pair] == path[j + 1]
            ):
                continue
            if steps[j] in _PRE_S5_STEPS:
                break
            return None, "topdown-vote"

        # --- fold simulation against final link states: any hop the
        # fold would try to vote on (UP after a descent / DOWN before an
        # ascent) may have been unlabeled mid-fold, so refuse it
        lids = [
            key_lid[(a << 32) | b if a <= b else (b << 32) | a]
            for a, b in zip(path, path[1:])
        ]
        states = [lstate[lid] for lid in lids]
        seen_descent = False
        for j, s in enumerate(states):
            if s == -2:  # sibling: resets the descent like the fold does
                seen_descent = False
                continue
            if seen_descent and s == path[j + 1]:
                return None, "fold-vote"
            if s == -1 or s == path[j]:
                seen_descent = True
        seen_ascent = False
        for j in range(len(states) - 1, -1, -1):
            s = states[j]
            if s == -2:
                seen_ascent = False
                continue
            if seen_ascent and s == path[j]:
                return None, "fold-vote"
            if s == -1 or s == path[j + 1]:
                seen_ascent = True

        checked.append((path, lids))

    # ------------------------------------------------------------------
    # commit: every check passed, the live labels are provably what a
    # batch run over filtered_new would produce — extend state in place
    # ------------------------------------------------------------------
    ids_item = result.index.ids.__getitem__
    ppdc = list(live.bits[ConeDefinition.PROVIDER_PEER_OBSERVED])
    bgp = list(live.bits[ConeDefinition.BGP_OBSERVED])
    for path, lids in checked:
        pi = len(result._path_nodes)
        pids = list(map(ids_item, path))
        for lid in lids:
            result._lpaths[lid].append(pi)
        result._path_nodes.append(path)
        result._path_lids.append(lids)
        result._path_pids.append(pids)
        # OR the new path's contribution into the observed-cone bitsets,
        # mirroring _bgp_observed_bits / _ppdc_bits restricted to it
        suffix = 0
        for j in range(len(lids) - 1, -1, -1):
            if lstate[lids[j]] == path[j]:
                suffix |= 1 << pids[j + 1]
                bgp[pids[j]] |= suffix
            else:
                suffix = 0
        suffix = 0
        for i in range(len(path) - 2, 0, -1):
            suffix |= 1 << pids[i + 1]
            s = lstate[lids[i - 1]]
            if s == -1 or s == path[i - 1]:
                ppdc[pids[i]] |= suffix

    result.paths = filtered_new
    result.discarded_poisoned = discarded
    from repro.graph.relgraph import RelGraph

    recursive = live.bits[ConeDefinition.RECURSIVE]
    if checked:
        # flat numpy views are corpus-shaped; invalidate, don't extend
        result._np_pid_flat = None
        result._np_fold = None
        # the p2c DAG did not change, so the recursive closure carries
        # over; rebuild the columnar graph (cheap) and hand it the
        # cached closure
        result._rel_graph = None
        graph = RelGraph.of(result)
        graph._closure = recursive
    else:
        # prefix-only publish: labels, paths, and adjacency all carried
        # over, so the cached graph (if any) is still the right one
        graph = RelGraph.of(result)
        if graph._closure is None:
            graph._closure = recursive

    from repro.asrank import ASRank

    facade = ASRank(
        sanitized_new, config=config, prefixes_by_asn=prefixes_new
    )
    facade._result = result
    bits_map = {
        ConeDefinition.RECURSIVE: recursive,
        ConeDefinition.BGP_OBSERVED: bgp,
        ConeDefinition.PROVIDER_PEER_OBSERVED: ppdc,
    }
    facade._cones = {
        definition: CustomerCones(
            definition,
            prefixes_by_asn=prefixes_new,
            graph=graph,
            bits=bits,
        )
        for definition, bits in bits_map.items()
    }
    return (
        LiveState(
            facade=facade,
            sanitized=sanitized_new,
            filtered=filtered_new,
            prefixes_by_asn=prefixes_new,
            bits=bits_map,
        ),
        None,
    )
