"""Shared AS-relationship vocabulary.

The encoding mirrors CAIDA's published ``as-rel`` files: ``-1`` for a
provider→customer edge and ``0`` for a peer edge, with ``2`` reserved
for siblings (ASes under common ownership) which appear in validation
data but are not inferred by the IMC 2013 algorithm.
"""

from __future__ import annotations

import enum
from typing import Tuple


class Relationship(enum.IntEnum):
    """Business relationship between two ASes, CAIDA ``as-rel`` codes."""

    P2C = -1  # first AS is the provider of the second
    P2P = 0  # settlement-free peers
    S2S = 2  # siblings (same organization)

    @property
    def label(self) -> str:
        return {
            Relationship.P2C: "p2c",
            Relationship.P2P: "p2p",
            Relationship.S2S: "s2s",
        }[self]


class RelClass(enum.Enum):
    """How an AS learned a route — drives Gao–Rexford export policy."""

    ORIGIN = "origin"
    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"


# Preference order for BGP decision process: customer routes first.
ROUTE_PREFERENCE = {
    RelClass.ORIGIN: 0,
    RelClass.CUSTOMER: 1,
    RelClass.PEER: 2,
    RelClass.PROVIDER: 3,
}


def canonical_pair(a: int, b: int) -> Tuple[int, int]:
    """Unordered link key: the pair sorted ascending."""
    return (a, b) if a <= b else (b, a)
