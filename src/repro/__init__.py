"""repro — reproduction of "AS Relationships, Customer Cones, and
Validation" (Luckie, Huffaker, Dhamdhere, Giotsas, claffy; IMC 2013).

The package implements the CAIDA ASRank system end to end on a
synthetic substrate:

* :mod:`repro.topology` — ground-truth Internet generator and a
  longitudinal growth model;
* :mod:`repro.bgp` — Gao–Rexford route propagation, vantage points,
  RIB collection and measurement noise;
* :mod:`repro.mrt` — RFC 6396 MRT binary reader/writer;
* :mod:`repro.core` — the paper's contribution: path sanitization,
  clique inference, the multi-step relationship-inference pipeline,
  three customer-cone definitions, and AS rank;
* :mod:`repro.baselines` — Gao (2001) and a degree heuristic;
* :mod:`repro.validation` — four validation sources and PPV scoring;
* :mod:`repro.analysis` — structural metrics and time series;
* :mod:`repro.datasets` — CAIDA ``as-rel`` / ``ppdc-ases`` file IO;
* :mod:`repro.scenarios` — named reproducible workloads.

Quick start::

    from repro.scenarios import get_scenario
    graph, corpus, paths, result = get_scenario("small").run()
    print(result.counts_by_relationship())
"""

from repro.relationships import RelClass, Relationship

__version__ = "1.0.0"

__all__ = ["Relationship", "RelClass", "__version__"]
