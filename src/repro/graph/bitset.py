"""Bitsets over dense ids: the system's one set-of-ASes encoding.

A *bitset* here is a plain Python int whose bit ``i`` means "the AS
with dense id ``i`` is a member".  Arbitrary-precision ints make
union/intersection single C-level ops and membership a shift-and-mask,
which is why cones, snapshots and the inference cycle check all speak
this encoding.  :class:`BitsetFamily` binds the encoding to one
:class:`~repro.graph.index.DenseIndex` so conversions to and from ASN
sets stay consistent; the two closure helpers below are the *only*
transitive-closure implementations in the repository:

* :func:`closure_bits` — the batch form: full closure of a DAG given
  per-id children lists (recursive cones, file-built snapshots);
* :class:`ClosureBitsets` — the incremental form: ancestor/descendant
  bitsets maintained edge by edge (the inference engine's O(1) cycle
  refusal).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from repro.graph.index import DenseIndex


def decode_bits(bits: int, asns: Sequence[int]) -> Set[int]:
    """Expand a bitset into the ASN set it encodes (``asns[i]`` per bit)."""
    out: Set[int] = set()
    while bits:
        low = bits & -bits
        out.add(asns[low.bit_length() - 1])
        bits ^= low
    return out


class BitsetFamily:
    """Bitset codec bound to one :class:`DenseIndex`.

    All bitsets produced by one family share an id space, so set
    algebra between them is meaningful; mixing families is a bug the
    caller owns (bitsets are plain ints and carry no tag).
    """

    __slots__ = ("index",)

    def __init__(self, index: DenseIndex):
        self.index = index

    def singleton(self, asn: int) -> int:
        return 1 << self.index.id_of(asn)

    def encode(self, asns: Iterable[int]) -> int:
        ids = self.index.ids
        bits = 0
        for asn in asns:
            bits |= 1 << ids[asn]
        return bits

    def decode(self, bits: int) -> Set[int]:
        return decode_bits(bits, self.index.asns)

    def contains(self, bits: int, asn: int) -> bool:
        dense_id = self.index.get(asn)
        return dense_id is not None and bool(bits >> dense_id & 1)

    def union(self, bitsets: Iterable[int]) -> int:
        bits = 0
        for mask in bitsets:
            bits |= mask
        return bits


def closure_bits(n: int, children: Dict[int, Iterable[int]]) -> List[int]:
    """Transitive closure of a DAG as bitsets, one per dense id.

    ``children`` maps a dense id to the ids reachable in one step
    (p2c: provider -> customers).  The result's entry ``i`` has bit
    ``i`` set (every node reaches itself) plus every transitively
    reachable id.  Iterative post-order, so deep hierarchies don't
    recurse; the engine refuses cycles upstream, making the DAG
    assumption safe.
    """
    bits: List[int] = [1 << i for i in range(n)]
    WHITE, GRAY, BLACK = 0, 1, 2
    color = [WHITE] * n
    for root in range(n):
        if color[root] != WHITE:
            continue
        stack = [(root, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                mask = 1 << node
                for child in children.get(node, ()):
                    mask |= bits[child]
                bits[node] = mask
                color[node] = BLACK
                continue
            if color[node] != WHITE:
                continue
            color[node] = GRAY
            stack.append((node, True))
            for child in children.get(node, ()):
                if color[child] == WHITE:
                    stack.append((child, False))
    return bits


class ClosureBitsets:
    """Incremental transitive closure of a growing p2c DAG.

    Maintains, per dense id, the strict-ancestor and strict-descendant
    bitsets; :meth:`add_edge` updates both sides in O(affected nodes),
    and :meth:`descends` answers the inference engine's would-this-
    edge-close-a-cycle question with one shift.  Grows with the id
    space via :meth:`ensure`.
    """

    __slots__ = ("anc", "desc")

    def __init__(self) -> None:
        self.anc: List[int] = []
        self.desc: List[int] = []

    def ensure(self, n: int) -> None:
        """Extend the per-id arrays to cover ids ``< n``."""
        grow = n - len(self.anc)
        if grow > 0:
            self.anc.extend([0] * grow)
            self.desc.extend([0] * grow)

    def add_edge(self, parent_id: int, child_id: int) -> None:
        """Record ``parent -> child``; both ids must be :meth:`ensure`-d.

        Every node at or above the parent gains the child's whole
        subtree as descendants, and every node at or below the child
        gains the parent's whole ancestry.
        """
        anc, desc = self.anc, self.desc
        above = anc[parent_id] | (1 << parent_id)
        below = desc[child_id] | (1 << child_id)
        bits = above
        while bits:
            low = bits & -bits
            desc[low.bit_length() - 1] |= below
            bits ^= low
        bits = below
        while bits:
            low = bits & -bits
            anc[low.bit_length() - 1] |= above
            bits ^= low

    def descends(self, ancestor_id: int, node_id: int) -> bool:
        """Is ``node_id`` a strict descendant of ``ancestor_id``?"""
        return bool(self.desc[ancestor_id] >> node_id & 1)

    @classmethod
    def rebuild(
        cls, n: int, edges: Iterable[Sequence[int]]
    ) -> "ClosureBitsets":
        """Batch-(re)build from scratch over ``(parent, child)`` edges.

        The removal path for the incremental closure: :meth:`add_edge`
        only ever grows the reachable sets, so dropping an edge (a
        withdrawn link, a relationship flip) means rebuilding from the
        surviving edge set — two :func:`closure_bits` passes (forward
        for descendants, reversed for ancestors) with the self-bits
        stripped to match the strict anc/desc convention.  Equivalent
        to replaying the surviving edges through :meth:`add_edge`, at
        batch cost instead of quadratic incremental cost.
        """
        children: Dict[int, List[int]] = {}
        parents: Dict[int, List[int]] = {}
        for parent_id, child_id in edges:
            children.setdefault(parent_id, []).append(child_id)
            parents.setdefault(child_id, []).append(parent_id)
        out = cls()
        out.desc = [
            bits ^ (1 << i)
            for i, bits in enumerate(closure_bits(n, children))
        ]
        out.anc = [
            bits ^ (1 << i)
            for i, bits in enumerate(closure_bits(n, parents))
        ]
        return out
