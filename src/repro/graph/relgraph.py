"""The frozen columnar AS graph every layer consumes.

A :class:`RelGraph` is one immutable view of a relationship-labeled AS
graph: a frozen :class:`~repro.graph.index.DenseIndex`, per-id sorted
adjacency lists split by relationship type, a lazily built
:class:`~repro.graph.csr.Csr`, a :class:`~repro.graph.bitset.BitsetFamily`
over the id space, and the lazily computed p2c transitive closure.

It is built **once** per world and then shared:

* :meth:`from_inference` compiles an
  :class:`~repro.core.inference.InferenceResult` (cached on the result,
  so the facade, cones and snapshot all get the *same* object — and
  when the inference engine's own index is already sorted, it is
  adopted without copying);
* :meth:`from_as_graph` compiles a topology-model
  :class:`~repro.topology.model.ASGraph` for route propagation (this
  is what :class:`~repro.bgp.propagation.GraphIndex` wraps);
* :meth:`from_links` compiles bare relationship rows (CAIDA as-rel
  files) for file-built snapshots.

Freezing is the point: the dense-id space of a RelGraph can never
shift, so bitsets and CSR arrays built against it stay valid for the
object's whole life.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.bitset import BitsetFamily, closure_bits
from repro.graph.csr import Csr
from repro.graph.index import DenseIndex


class RelGraph:
    """Immutable columnar graph: index + typed adjacency + bitsets."""

    __slots__ = (
        "index",
        "family",
        "providers",
        "customers",
        "peers",
        "siblings",
        "result",
        "_csr",
        "_closure",
    )

    def __init__(
        self,
        index: DenseIndex,
        providers: List[List[int]],
        customers: List[List[int]],
        peers: List[List[int]],
        siblings: Optional[List[List[int]]] = None,
        result=None,
    ):
        self.index = index.freeze()
        self.family = BitsetFamily(index)
        self.providers = providers
        self.customers = customers
        self.peers = peers
        self.siblings = siblings or [[] for _ in range(len(index))]
        # the InferenceResult this graph was compiled from, when any:
        # the observed-cone computations need its path/link-state index
        self.result = result
        self._csr: Optional[Csr] = None
        self._closure: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------

    @classmethod
    def of(cls, source) -> "RelGraph":
        """Coerce: a RelGraph passes through, an InferenceResult
        compiles (cached), anything else is a type error."""
        if isinstance(source, cls):
            return source
        from repro.core.inference import InferenceResult

        if isinstance(source, InferenceResult):
            return cls.from_inference(source)
        raise TypeError(
            f"cannot build a RelGraph from {type(source).__name__}"
        )

    @classmethod
    def from_inference(cls, result) -> "RelGraph":
        """Compile an inference result; cached on the result object.

        The id space is the sorted corpus AS set plus any hand-voted
        ASes outside it.  When the engine's own index already equals
        that (every fast-path run), it is adopted as-is — the zero-copy
        case the snapshot build relies on.
        """
        cached = getattr(result, "_rel_graph", None)
        if cached is not None:
            return cached

        universe: Set[int] = set(result.paths.asns())
        for a, b in result.links():
            universe.add(a)
            universe.add(b)

        own = result.index
        if (
            own is not None
            and own.is_sorted
            and len(own) == len(universe)
            and not (universe - own.ids.keys())
        ):
            index = own
        else:
            index = DenseIndex(universe)

        graph = cls(
            index,
            providers=_id_adjacency(index, result.providers),
            customers=_id_adjacency(index, result.customers),
            peers=_id_adjacency(index, result.peers),
            siblings=_id_adjacency(index, result.siblings),
            result=result,
        )
        result._rel_graph = graph
        return graph

    @classmethod
    def from_as_graph(cls, graph, restrict: Optional[Set[int]] = None
                      ) -> "RelGraph":
        """Compile a topology-model graph for route propagation.

        IXP route-server ASes do not route and are excluded;
        ``restrict`` limits the id space further (the IPv6 plane).
        Sibling links behave as peering links for propagation, so they
        merge into the peer adjacency here.
        """
        from repro.topology.model import ASType

        index = DenseIndex(
            asys.asn
            for asys in graph.ases()
            if asys.type is not ASType.IXP_RS
            and (restrict is None or asys.asn in restrict)
        )
        ids = index.ids
        n = len(index)
        providers: List[List[int]] = [[] for _ in range(n)]
        customers: List[List[int]] = [[] for _ in range(n)]
        peers: List[List[int]] = [[] for _ in range(n)]
        for asn in index.asns:
            i = ids[asn]
            providers[i] = sorted(
                ids[p] for p in graph.providers[asn] if p in ids
            )
            customers[i] = sorted(
                ids[c] for c in graph.customers[asn] if c in ids
            )
            peerish = graph.peers[asn] | graph.siblings[asn]
            peers[i] = sorted(ids[p] for p in peerish if p in ids)
        return cls(index, providers, customers, peers)

    @classmethod
    def from_links(
        cls,
        asns: Iterable[int],
        p2c: Iterable[Tuple[int, int]] = (),
        p2p: Iterable[Tuple[int, int]] = (),
    ) -> "RelGraph":
        """Compile bare ``(provider, customer)`` / ``(a, b)`` rows."""
        index = DenseIndex(asns)
        ids = index.ids
        n = len(index)
        providers: List[List[int]] = [[] for _ in range(n)]
        customers: List[List[int]] = [[] for _ in range(n)]
        peers: List[List[int]] = [[] for _ in range(n)]
        for provider, customer in p2c:
            customers[ids[provider]].append(ids[customer])
            providers[ids[customer]].append(ids[provider])
        for a, b in p2p:
            peers[ids[a]].append(ids[b])
            peers[ids[b]].append(ids[a])
        for rows in (providers, customers, peers):
            for row in rows:
                row.sort()
        return cls(index, providers, customers, peers)

    # ------------------------------------------------------------------
    # columnar views
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.index)

    def csr(self) -> Csr:
        """The CSR adjacency (built once; numpy or list-backed)."""
        if self._csr is None:
            self._csr = Csr(self.providers, self.customers, self.peers)
        return self._csr

    def closure(self) -> List[int]:
        """Recursive customer-cone bitsets, one per dense id (cached).

        Entry ``i`` is the transitive closure over customer edges from
        id ``i``, including ``i`` itself — the ``recursive`` cone
        definition, and the system's only closure computation.
        """
        if self._closure is None:
            self._closure = closure_bits(
                len(self.index),
                {i: row for i, row in enumerate(self.customers) if row},
            )
        return self._closure


def _id_adjacency(
    index: DenseIndex, by_asn: Dict[int, Set[int]]
) -> List[List[int]]:
    """ASN-keyed neighbor sets -> per-id sorted id lists."""
    ids = index.ids
    out: List[List[int]] = [[] for _ in range(len(index))]
    for asn, neighbors in by_asn.items():
        out[ids[asn]] = sorted(ids[n] for n in neighbors)
    return out
