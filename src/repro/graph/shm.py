"""Zero-copy shared-memory codec for frozen columnar graphs.

:class:`SharedRelGraph` packs one frozen graph — the
:class:`~repro.graph.index.DenseIndex` ASN table, the three
relationship-typed CSR adjacencies, optionally the customer-cone
closure bitsets and the IXP route-server link map — into a single
named ``multiprocessing.shared_memory`` segment.  Worker processes
attach the segment read-only and build numpy views straight into the
mapping: no pickling, no copying, one physical copy of the graph no
matter how many workers collect over it.

Segment layout (all little-endian, sections 8-byte aligned)::

    [0:8)    magic  b"RGSHM01\\n"
    [8:12)   uint32 header length L
    [12:12+L) JSON header:
             {"n": <row count>,
              "sections": [[name, dtype, offset, count], ...]}
    [..]     section payloads in header order

Section names: ``asns``; ``<view>_indptr``/``<view>_indices`` for
``prov``/``cust``/``peer``; optional ``ixp_a``/``ixp_b``/``ixp_rs``
(the ``via_ixp`` link map as parallel columns) and
``cone_indptr``/``cone_bytes`` (closure bitsets as little-endian byte
runs).  Dtypes follow the repo-wide int32-first policy: every column
is int32 unless its value range forces int64.

Ownership rules:

* the process that calls :meth:`pack` owns the segment — it must
  eventually :meth:`unlink` it (a module registry plus ``atexit``
  backstop does this for owners that forget; the collector ties a
  segment's life to its ``Collector`` via ``weakref.finalize``);
* attachers (pool workers) never unlink; they cache one attachment per
  segment name for the life of the process and deregister from the
  ``resource_tracker`` so a worker exiting early cannot tear the
  segment down under its siblings (CPython < 3.13 registers attachers
  as if they were owners);
* on Linux the ``/dev/shm`` entry disappears at owner unlink even
  while workers still map it, so no orphans survive the owning
  process.
"""

from __future__ import annotations

import atexit
import json
import os
import struct
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.csr import Csr

try:  # pragma: no cover - numpy is in the standard image
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

try:
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - all supported platforms have it
    _shm = None
    _resource_tracker = None

#: True when the zero-copy worker path can run at all
HAS_SHARED_MEMORY = _np is not None and _shm is not None

_MAGIC = b"RGSHM01\n"
_ALIGN = 8
_VIEWS = ("prov", "cust", "peer")

# segments owned by this process, by name; the atexit backstop unlinks
# whatever an owner did not release explicitly
_OWNED: Dict[str, "SharedRelGraph"] = {}
# attachments cached by this (worker) process, by name
_ATTACHED: Dict[str, "SharedGraphIndex"] = {}
_LOCK = threading.Lock()
_NAME_COUNTER = 0


class SharedMemoryUnavailable(RuntimeError):
    """Raised when packing is requested but the codec cannot run."""


def _require_available() -> None:
    if not HAS_SHARED_MEMORY:
        raise SharedMemoryUnavailable(
            "shared-memory graph codec needs numpy and "
            "multiprocessing.shared_memory"
        )


def _next_name() -> str:
    global _NAME_COUNTER
    with _LOCK:
        _NAME_COUNTER += 1
        return f"repro_rg_{os.getpid()}_{_NAME_COUNTER}"


def _column(values: Sequence[int], force_wide: bool = False):
    """An int32 column, widened to int64 only when values demand it."""
    arr = _np.asarray(values, dtype=_np.int64)
    if not force_wide and (
        arr.size == 0
        or (int(arr.min()) >= -(2**31) and int(arr.max()) < 2**31)
    ):
        return arr.astype(_np.int32)
    return arr


class SharedRelGraph:
    """Owner handle for one packed graph segment."""

    __slots__ = ("name", "n", "_shm", "_sections", "_owner")

    def __init__(self, shm_obj, n: int, sections, owner: bool):
        self.name = shm_obj.name
        self.n = n
        self._shm = shm_obj
        self._sections = sections  # name -> (dtype str, offset, count)
        self._owner = owner

    # ------------------------------------------------------------------
    # packing (owner side)
    # ------------------------------------------------------------------

    @classmethod
    def pack(
        cls,
        rel,
        via_ixp: Optional[Dict[Tuple[int, int], int]] = None,
        include_closure: bool = False,
        name: Optional[str] = None,
    ) -> "SharedRelGraph":
        """Pack a :class:`~repro.graph.relgraph.RelGraph` into a segment.

        ``via_ixp`` (a ``canonical pair -> route-server ASN`` map, the
        generator's ``graph.via_ixp``) rides along as three parallel
        columns so workers need no topology object at all;
        ``include_closure`` additionally packs the customer-cone
        bitsets.  Returns the owning handle, registered for ``atexit``
        unlink.
        """
        _require_available()
        csr = rel.csr()
        arrays: List[Tuple[str, "_np.ndarray"]] = [
            ("asns", _column(rel.index.asns))
        ]
        for view_name, view in zip(
            _VIEWS, (csr.providers, csr.customers, csr.peers)
        ):
            indptr, indices = view
            arrays.append(
                (f"{view_name}_indptr", _np.ascontiguousarray(indptr))
            )
            arrays.append(
                (f"{view_name}_indices", _np.ascontiguousarray(indices))
            )
        if via_ixp:
            pairs = sorted(via_ixp.items())
            arrays.append(("ixp_a", _column([p[0][0] for p in pairs])))
            arrays.append(("ixp_b", _column([p[0][1] for p in pairs])))
            arrays.append(("ixp_rs", _column([p[1] for p in pairs])))
        if include_closure:
            blobs = [
                bits.to_bytes((bits.bit_length() + 7) // 8, "little")
                for bits in rel.closure()
            ]
            offsets = [0]
            for blob in blobs:
                offsets.append(offsets[-1] + len(blob))
            arrays.append(("cone_indptr", _column(offsets, force_wide=True)))
            arrays.append(
                ("cone_bytes",
                 _np.frombuffer(b"".join(blobs), dtype=_np.uint8))
            )

        sections: Dict[str, Tuple[str, int, int]] = {}
        entries = []
        offset = 0  # relative to the data region; rebased below
        for sec_name, arr in arrays:
            offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
            sections[sec_name] = (str(arr.dtype), offset, int(arr.size))
            entries.append([sec_name, str(arr.dtype), offset, int(arr.size)])
            offset += arr.nbytes
        header = json.dumps(
            {"n": len(rel.index), "sections": entries},
            separators=(",", ":"),
        ).encode("ascii")
        data_base = (
            (len(_MAGIC) + 4 + len(header) + _ALIGN - 1)
            // _ALIGN * _ALIGN
        )
        total = data_base + offset

        shm_obj = _shm.SharedMemory(
            create=True, size=max(total, 1), name=name or _next_name()
        )
        buf = shm_obj.buf
        buf[: len(_MAGIC)] = _MAGIC
        struct.pack_into("<I", buf, len(_MAGIC), len(header))
        buf[len(_MAGIC) + 4: len(_MAGIC) + 4 + len(header)] = header
        for sec_name, arr in arrays:
            _, rel_off, count = sections[sec_name]
            dest = _np.frombuffer(
                buf, dtype=arr.dtype, count=count,
                offset=data_base + rel_off,
            )
            dest[:] = arr
        rebased = {
            sec: (dtype, data_base + rel_off, count)
            for sec, (dtype, rel_off, count) in sections.items()
        }
        packed = cls(shm_obj, len(rel.index), rebased, owner=True)
        with _LOCK:
            _OWNED[packed.name] = packed
        return packed

    # ------------------------------------------------------------------
    # attaching (worker side)
    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, name: str) -> "SharedRelGraph":
        """Map an existing segment read-only (never unlinks it)."""
        _require_available()
        # CPython < 3.13 registers every attach with the resource
        # tracker as if it owned the segment (bpo-39959); with a
        # fork-shared tracker that later collides with the owner's own
        # registration, and with a spawn-private tracker the segment
        # would be unlinked when this worker exits.  Suppress the
        # registration for the duration of the attach instead.
        with _LOCK:
            if _resource_tracker is not None:
                saved = _resource_tracker.register
                _resource_tracker.register = lambda *a, **k: None
            try:
                shm_obj = _shm.SharedMemory(name=name)
            finally:
                if _resource_tracker is not None:
                    _resource_tracker.register = saved
        buf = shm_obj.buf
        if bytes(buf[: len(_MAGIC)]) != _MAGIC:
            shm_obj.close()
            raise ValueError(f"segment {name!r} is not a packed RelGraph")
        (header_len,) = struct.unpack_from("<I", buf, len(_MAGIC))
        header = json.loads(
            bytes(buf[len(_MAGIC) + 4: len(_MAGIC) + 4 + header_len])
        )
        data_base = (
            (len(_MAGIC) + 4 + header_len + _ALIGN - 1) // _ALIGN * _ALIGN
        )
        sections = {
            sec: (dtype, data_base + rel_off, count)
            for sec, dtype, rel_off, count in header["sections"]
        }
        return cls(shm_obj, int(header["n"]), sections, owner=False)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def section(self, name: str) -> "_np.ndarray":
        """Read-only numpy view of one section (zero-copy)."""
        dtype, offset, count = self._sections[name]
        arr = _np.frombuffer(
            self._shm.buf, dtype=_np.dtype(dtype), count=count, offset=offset
        )
        arr.flags.writeable = False
        return arr

    def has_section(self, name: str) -> bool:
        return name in self._sections

    def csr(self) -> Csr:
        """The three CSR views, backed directly by the segment."""
        views = tuple(
            (self.section(f"{v}_indptr"), self.section(f"{v}_indices"))
            for v in _VIEWS
        )
        return Csr.from_arrays(*views)

    def via_ixp(self) -> Dict[Tuple[int, int], int]:
        """The packed IXP link map (empty when not packed)."""
        if not self.has_section("ixp_a"):
            return {}
        a = self.section("ixp_a").tolist()
        b = self.section("ixp_b").tolist()
        rs = self.section("ixp_rs").tolist()
        return {(x, y): z for x, y, z in zip(a, b, rs)}

    def closure_bits(self) -> Optional[List[int]]:
        """The packed cone bitsets (``None`` when not packed)."""
        if not self.has_section("cone_indptr"):
            return None
        offsets = self.section("cone_indptr")
        blob = self.section("cone_bytes").tobytes()
        return [
            int.from_bytes(blob[offsets[i]: offsets[i + 1]], "little")
            for i in range(self.n)
        ]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (views become invalid).

        When live numpy views still pin the mapping the close is
        deferred to process exit (the OS reclaims it; on Linux the
        ``/dev/shm`` entry is already gone once the owner unlinked) and
        the handle's destructor is disarmed so garbage collection does
        not retry and raise an unraisable :class:`BufferError`.
        """
        try:
            self._shm.close()
        except BufferError:
            self._shm.close = lambda: None

    def unlink(self) -> None:
        """Remove the segment (owner only); idempotent."""
        with _LOCK:
            _OWNED.pop(self.name, None)
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._owner = False
        self.close()


class _CsrRows:
    """List-of-lists façade over one CSR view.

    ``rows[i]`` is the (sorted) neighbor slice of dense id ``i`` — what
    the reference sweeps and the leak pass iterate — served straight
    from the mapped arrays.
    """

    __slots__ = ("indptr", "indices")

    def __init__(self, view):
        self.indptr, self.indices = view

    def __getitem__(self, i):
        return self.indices[self.indptr[i]: self.indptr[i + 1]]

    def __len__(self) -> int:
        return len(self.indptr) - 1


class SharedGraphIndex:
    """A :class:`~repro.bgp.propagation.GraphIndex`-shaped view of a
    packed segment: ``asns``/``index`` lookup tables plus the typed
    adjacency, everything the batched engine, the reference leak pass
    and path reconstruction consume — built from the mapping, not from
    a pickled topology."""

    __slots__ = (
        "shared", "asns", "index", "providers", "customers", "peers",
        "via_ixp", "_csr",
    )

    def __init__(self, shared: SharedRelGraph):
        self.shared = shared
        self._csr = shared.csr()
        # the lookup tables are materialized once per process: tiny
        # next to the adjacency, and path walks then run at list speed
        self.asns: List[int] = shared.section("asns").tolist()
        self.index: Dict[int, int] = {
            asn: i for i, asn in enumerate(self.asns)
        }
        self.providers = _CsrRows(self._csr.providers)
        self.customers = _CsrRows(self._csr.customers)
        self.peers = _CsrRows(self._csr.peers)
        self.via_ixp = shared.via_ixp()

    def __len__(self) -> int:
        return len(self.asns)

    def csr(self) -> Csr:
        return self._csr


def attach_index(name: str) -> SharedGraphIndex:
    """Worker-side attach, cached per process per segment name."""
    with _LOCK:
        cached = _ATTACHED.get(name)
    if cached is not None:
        return cached
    view = SharedGraphIndex(SharedRelGraph.attach(name))
    with _LOCK:
        return _ATTACHED.setdefault(name, view)


def release(name: str) -> None:
    """Owner-side unlink by name; safe when already released."""
    with _LOCK:
        packed = _OWNED.get(name)
    if packed is not None:
        packed.unlink()


def unlink_all() -> None:
    """Unlink every segment this process still owns (atexit backstop)."""
    with _LOCK:
        owned = list(_OWNED.values())
    for packed in owned:
        packed.unlink()


atexit.register(unlink_all)
