"""Relationship-typed CSR adjacency over dense ids.

The flat ``(indptr, indices)`` form every vectorized sweep wants: row
``i``'s neighbors are ``indices[indptr[i]:indptr[i+1]]``.  One
:class:`Csr` bundles the three relationship-typed views (providers,
customers, peers) that route propagation and any future traversal
consume.  Arrays are numpy when available; otherwise plain Python
lists with the same slicing contract, so pure-Python consumers (and
the no-numpy CI leg) keep working — only the numpy-vectorized engines
need to check :data:`HAS_NUMPY` before fancy-indexing.

Determinism: building from the same adjacency lists always yields
byte-identical arrays — ``indptr`` is a running sum and ``indices``
a concatenation, with no hashing or ordering freedom anywhere.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

try:  # optional: list-backed fallback below
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the standard image
    _np = None

HAS_NUMPY = _np is not None


def csr_arrays(adjacency: Sequence[Sequence[int]]) -> Tuple[object, object]:
    """``(indptr, indices)`` for one adjacency; numpy or list-backed."""
    if _np is not None:
        indptr = _np.zeros(len(adjacency) + 1, dtype=_np.int64)
        _np.cumsum([len(row) for row in adjacency], out=indptr[1:])
        indices = _np.fromiter(
            (neighbor for row in adjacency for neighbor in row),
            dtype=_np.int32,
            count=int(indptr[-1]),
        )
        return indptr, indices
    indptr: List[int] = [0]
    indices: List[int] = []
    for row in adjacency:
        indices.extend(row)
        indptr.append(len(indices))
    return indptr, indices


class Csr:
    """The three relationship-typed CSR views of one graph."""

    __slots__ = ("providers", "customers", "peers")

    def __init__(
        self,
        providers: Sequence[Sequence[int]],
        customers: Sequence[Sequence[int]],
        peers: Sequence[Sequence[int]],
    ):
        self.providers = csr_arrays(providers)
        self.customers = csr_arrays(customers)
        self.peers = csr_arrays(peers)

    def neighbors(self, view: Tuple[object, object], i: int):
        """Row ``i`` of a view — works on numpy and list backing alike."""
        indptr, indices = view
        return indices[indptr[i]:indptr[i + 1]]
