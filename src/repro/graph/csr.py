"""Relationship-typed CSR adjacency over dense ids.

The flat ``(indptr, indices)`` form every vectorized sweep wants: row
``i``'s neighbors are ``indices[indptr[i]:indptr[i+1]]``.  One
:class:`Csr` bundles the three relationship-typed views (providers,
customers, peers) that route propagation and any future traversal
consume.  Arrays are numpy when available; otherwise plain Python
lists with the same slicing contract, so pure-Python consumers (and
the no-numpy CI leg) keep working — only the numpy-vectorized engines
need to check :data:`HAS_NUMPY` before fancy-indexing.

Dtype policy: ``indices`` is always int32 (dense ids are bounded by
the row count, which :data:`MAX_INT32` caps); ``indptr`` is int32
while the entry count fits and falls back to int64 beyond that.  A
graph that cannot be addressed in 32 bits at all (≥ 2^31 rows) raises
:class:`CsrOverflowError` instead of silently wrapping.

Determinism: building from the same adjacency lists always yields
byte-identical arrays — ``indptr`` is a running sum and ``indices``
a concatenation, with no hashing or ordering freedom anywhere.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

try:  # optional: list-backed fallback below
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the standard image
    _np = None

HAS_NUMPY = _np is not None

#: largest value an int32 cell can hold; the row-count ceiling for any
#: columnar structure addressed by dense int32 ids
MAX_INT32 = 2**31 - 1


class CsrOverflowError(OverflowError):
    """A CSR build would overflow its 32-bit id space."""


def csr_arrays(adjacency: Sequence[Sequence[int]]) -> Tuple[object, object]:
    """``(indptr, indices)`` for one adjacency; numpy or list-backed.

    ``indices`` is int32 — dense ids, bounded by the row count, which
    must itself fit int32 (:class:`CsrOverflowError` otherwise).
    ``indptr`` is int32 while the total entry count fits, int64 beyond.
    """
    if len(adjacency) > MAX_INT32:
        raise CsrOverflowError(
            f"{len(adjacency)} rows cannot be addressed by int32 dense ids"
        )
    if _np is not None:
        counts = [len(row) for row in adjacency]
        total = sum(counts)
        ptr_dtype = _np.int32 if total <= MAX_INT32 else _np.int64
        indptr = _np.zeros(len(adjacency) + 1, dtype=ptr_dtype)
        _np.cumsum(counts, out=indptr[1:])
        indices = _np.fromiter(
            (neighbor for row in adjacency for neighbor in row),
            dtype=_np.int32,
            count=total,
        )
        return indptr, indices
    indptr: List[int] = [0]
    indices: List[int] = []
    for row in adjacency:
        indices.extend(row)
        indptr.append(len(indices))
    return indptr, indices


class Csr:
    """The three relationship-typed CSR views of one graph."""

    __slots__ = ("providers", "customers", "peers")

    def __init__(
        self,
        providers: Sequence[Sequence[int]],
        customers: Sequence[Sequence[int]],
        peers: Sequence[Sequence[int]],
    ):
        self.providers = csr_arrays(providers)
        self.customers = csr_arrays(customers)
        self.peers = csr_arrays(peers)

    @classmethod
    def from_arrays(
        cls,
        providers: Tuple[object, object],
        customers: Tuple[object, object],
        peers: Tuple[object, object],
    ) -> "Csr":
        """Adopt prebuilt ``(indptr, indices)`` pairs without copying.

        The zero-copy constructor the shared-memory codec uses: the
        views may be backed by a mapped segment, so consumers must not
        mutate them.
        """
        csr = cls.__new__(cls)
        csr.providers = providers
        csr.customers = customers
        csr.peers = peers
        return csr

    def neighbors(self, view: Tuple[object, object], i: int):
        """Row ``i`` of a view — works on numpy and list backing alike."""
        indptr, indices = view
        return indices[indptr[i]:indptr[i + 1]]
