"""repro.graph — the shared columnar graph core.

One canonical home for the dense representations every layer of the
reproduction used to hand-roll separately:

* :class:`~repro.graph.index.DenseIndex` — the ASN ↔ dense-id mapping
  (sorted, deterministic, grow-on-demand until frozen);
* :class:`~repro.graph.bitset.BitsetFamily` /
  :class:`~repro.graph.bitset.ClosureBitsets` /
  :func:`~repro.graph.bitset.closure_bits` — Python-int bitsets over
  dense ids and the system's only transitive-closure implementations;
* :class:`~repro.graph.csr.Csr` — relationship-typed CSR adjacency
  (numpy-backed with a pure-Python fallback);
* :class:`~repro.graph.relgraph.RelGraph` — the frozen graph object
  built once per world and consumed by inference, cones, propagation
  and the snapshot store;
* :class:`~repro.graph.shm.SharedRelGraph` — the zero-copy
  shared-memory codec that packs a frozen graph into one named segment
  for worker processes to map read-only.

See docs/ARCHITECTURE.md for which layer owns what.
"""

from repro.graph.bitset import (
    BitsetFamily,
    ClosureBitsets,
    closure_bits,
    decode_bits,
)
from repro.graph.csr import HAS_NUMPY, MAX_INT32, Csr, CsrOverflowError, csr_arrays
from repro.graph.index import MAX_ASN, DenseIndex
from repro.graph.relgraph import RelGraph
from repro.graph.shm import (
    HAS_SHARED_MEMORY,
    SharedGraphIndex,
    SharedMemoryUnavailable,
    SharedRelGraph,
)

__all__ = [
    "BitsetFamily",
    "ClosureBitsets",
    "Csr",
    "CsrOverflowError",
    "DenseIndex",
    "HAS_NUMPY",
    "HAS_SHARED_MEMORY",
    "MAX_ASN",
    "MAX_INT32",
    "RelGraph",
    "SharedGraphIndex",
    "SharedMemoryUnavailable",
    "SharedRelGraph",
    "closure_bits",
    "csr_arrays",
    "decode_bits",
]
