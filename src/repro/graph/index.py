"""The one ASN ↔ dense-id index of the system.

Every columnar structure in this repo — inference's cycle bitsets and
fold arrays, cone bitsets, propagation's CSR adjacency, the snapshot's
packed sections — addresses ASes by a small dense integer instead of
the sparse 32-bit ASN.  :class:`DenseIndex` is the single home of that
mapping; no other module may build an ``asn -> dense id`` dict.

The canonical construction is *sorted*: ids are assigned in ascending
ASN order, which makes "lowest ASN" tie-breaks equal to "lowest id"
tie-breaks and lets independently built indexes over the same AS set
agree bit for bit (the property tests assert exactly this across the
inference, cone, propagation and snapshot layers).

Indexes grow on demand through :meth:`intern` until frozen; a frozen
index refuses growth, which is how downstream columnar views (CSR
arrays, bitsets) guarantee their id space can no longer shift under
them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

#: ASNs are 32-bit identifiers; anything beyond this cannot come from
#: the wire and would silently wrap in packed columnar sections
MAX_ASN = 2**32 - 1


def _check_asn_range(lo: int, hi: int) -> None:
    """Reject ASNs a packed 32-bit column could not represent."""
    if lo < 0 or hi > MAX_ASN:
        bad = lo if lo < 0 else hi
        raise ValueError(
            f"ASN {bad} outside the 32-bit ASN space [0, {MAX_ASN}]"
        )


class DenseIndex:
    """A deterministic ASN ↔ dense-id mapping.

    ``DenseIndex(asns)`` sorts and dedupes; :meth:`from_sorted` adopts
    an already-sorted unique list without copying or checking (for the
    hot paths that got it from ``numpy.unique``); :meth:`from_ordered`
    preserves the caller's explicit order for table-shaped uses (e.g.
    the MRT writer's peer table) where position, not sortedness, is the
    contract.
    """

    __slots__ = ("ids", "asns", "_frozen", "_sorted")

    def __init__(self, asns: Iterable[int] = ()):
        self.asns: List[int] = sorted(set(asns))
        if self.asns:
            _check_asn_range(self.asns[0], self.asns[-1])
        self.ids: Dict[int, int] = {
            asn: i for i, asn in enumerate(self.asns)
        }
        self._frozen = False
        self._sorted = True

    @classmethod
    def from_sorted(cls, asns: List[int]) -> "DenseIndex":
        """Adopt ``asns`` verbatim as ids 0..n-1 (caller guarantees the
        list is sorted and duplicate-free)."""
        index = cls()
        if asns:
            _check_asn_range(asns[0], asns[-1])
        index.asns = asns
        index.ids = {asn: i for i, asn in enumerate(asns)}
        return index

    @classmethod
    def from_ordered(cls, asns: Iterable[int]) -> "DenseIndex":
        """Assign ids in first-seen order (duplicates collapse)."""
        index = cls()
        index._sorted = False
        for asn in asns:
            index.intern(asn)
        return index

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def id_of(self, asn: int) -> int:
        """Dense id of ``asn``; raises ``KeyError`` when absent."""
        return self.ids[asn]

    def get(self, asn: int) -> Optional[int]:
        return self.ids.get(asn)

    def asn_of(self, dense_id: int) -> int:
        return self.asns[dense_id]

    def __contains__(self, asn: int) -> bool:
        return asn in self.ids

    def __len__(self) -> int:
        return len(self.asns)

    def __iter__(self) -> Iterator[int]:
        return iter(self.asns)

    @property
    def is_sorted(self) -> bool:
        """True while ids are in ascending ASN order (grow-on-demand
        interning of an out-of-order ASN clears it)."""
        return self._sorted

    @property
    def frozen(self) -> bool:
        return self._frozen

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------

    def intern(self, asn: int) -> int:
        """Dense id for ``asn``, assigning the next id on first sight.

        Refused on a frozen index: columnar structures built over the
        id space rely on it never shifting afterwards.
        """
        idx = self.ids.get(asn)
        if idx is None:
            if self._frozen:
                raise ValueError(
                    f"cannot intern AS{asn}: index is frozen at "
                    f"{len(self.asns)} ASes"
                )
            if asn < 0 or asn > MAX_ASN:
                _check_asn_range(asn, asn)
            idx = len(self.asns)
            if self._sorted and self.asns and asn < self.asns[-1]:
                self._sorted = False
            self.ids[asn] = idx
            self.asns.append(asn)
        return idx

    def freeze(self) -> "DenseIndex":
        """Refuse further growth; returns self for chaining."""
        self._frozen = True
        return self
